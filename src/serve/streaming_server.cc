#include "streaming_server.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "ir/plan_cache.h"
#include "obs/exemplar.h"
#include "obs/trace_recorder.h"

namespace reuse {

namespace {

EdfShardQueues<std::shared_ptr<Session>>::Config
makeSchedConfig(const StreamingServer::Config &config, size_t shards)
{
    EdfShardQueues<std::shared_ptr<Session>>::Config sc;
    sc.shards = shards;
    sc.capacityPerShard =
        config.queueCapacity == 0
            ? 0
            : std::max<size_t>(1, config.queueCapacity / shards);
    sc.workersPerShard =
        std::max<size_t>(1, config.workerThreads / shards);
    sc.initialServiceEstimateMicros =
        config.initialServiceEstimateMicros;
    return sc;
}

} // namespace

size_t
StreamingServer::resolveShards(const Config &config)
{
    if (config.shards > 0)
        return config.shards;
    // Auto: two workers per shard keeps per-shard EDF queues short
    // without starving shards of drain capacity.
    return std::max<size_t>(1, config.workerThreads / 2);
}

StreamingServer::StreamingServer(const ReuseEngine &engine, Config config)
    : StreamingServer({{std::string("default"), &engine}}, config)
{
}

StreamingServer::StreamingServer(
    const std::vector<std::pair<std::string, const ReuseEngine *>> &zoo,
    Config config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &SystemClock::instance()),
      manager_(SessionManager::Config{config.memoryBudgetBytes},
               &metrics_),
      sched_(makeSchedConfig(config, resolveShards(config))),
      placer_(resolveShards(config))
{
    REUSE_ASSERT(!zoo.empty(), "server needs at least one model");
    for (const auto &[name, engine] : zoo) {
        REUSE_ASSERT(engine != nullptr, "null engine for " << name);
        REUSE_ASSERT(!engine->network().isRecurrent(),
                     "serving executes per-frame; recurrent model "
                         << name << " is not servable");
        const bool inserted = zoo_.emplace(name, engine).second;
        REUSE_ASSERT(inserted, "duplicate model name " << name);
    }
    bool arm_exemplars = config_.exemplars.enabled;
    if (const char *env = std::getenv("REUSE_EXEMPLARS")) {
        if (env[0] != '\0' && std::string(env) != "0")
            arm_exemplars = true;
    }
    if (arm_exemplars) {
        // Process-wide on purpose (staging hooks live in the obs
        // layer); a server that never enables exemplars leaves the
        // recorder's prior state alone.
        obs::ExemplarRecorder::Policy policy;
        policy.armed = true;
        policy.lowReuseFloor = config_.exemplars.lowReuseFloor;
        policy.ringCapacity = config_.exemplars.ringCapacity;
        for (size_t c = 0; c < kSloClassCount; ++c) {
            policy.latencyThresholdMicros[c] =
                config_.exemplars.latencyThresholdMicros[c];
            policy.classNames.push_back(
                sloClassName(static_cast<SloClass>(c)));
        }
        obs::ExemplarRecorder::instance().configure(policy);
    }
    if (!config_.manualDispatch)
        start(config_.workerThreads == 0 ? 1 : config_.workerThreads);
}

StreamingServer::~StreamingServer()
{
    stop();
}

void
StreamingServer::start(size_t worker_threads)
{
    workers_.reserve(worker_threads);
    for (size_t i = 0; i < worker_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
StreamingServer::stop()
{
    if (stopped_.exchange(true))
        return;
    sched_.close();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

SessionId
StreamingServer::openSession(const std::string &model, uint64_t seed,
                             SloClass slo, uint64_t signatureHint)
{
    auto it = zoo_.find(model);
    REUSE_ASSERT(it != zoo_.end(), "unknown model " << model);
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    SessionManager::Admission admission =
        manager_.tryCreate(*it->second, seed, slo);
    if (admission.session == nullptr) {
        warn(model + ": session admission rejected\n" +
             admission.report.str());
        return kInvalidSessionId;
    }
    Session &session = *admission.session;
    const size_t shard =
        placer_.place(session.planFingerprint(), signatureHint);
    {
        MutexLock lock(session.queue_mu_);
        session.shard_ = shard;
    }
    metrics_.sessionOpened();
    return session.id();
}

std::future<Tensor>
StreamingServer::submitFrame(SessionId id, Tensor input)
{
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);

    const int64_t now = clock_->nowMicros();
    FrameRequest req;
    req.input = std::move(input);
    req.enqueuedMicros = now;
    req.deadlineMicros = now + config_.slo.budget(session->slo());
    std::future<Tensor> future = req.result.get_future();

    uint64_t frame_index = 0;
    size_t shard = 0;
    {
        MutexLock lock(session->queue_mu_);
        REUSE_ASSERT(!session->closing_,
                     "session " << id << " is closing");
        frame_index = session->next_frame_index_++;
        req.frameIndex = frame_index;
        req.submitEpoch = session->placement_epoch_;
        shard = session->shard_;
        // Blocking-submit contract: the frame is admitted even when
        // the deadline is provably unmeetable — it will simply count
        // as a deadline miss.  Load generators that want shedding use
        // trySubmitFrame().
        sched_.forceAdmitFrame(shard, req.deadlineMicros);
        session->pending_.push_back(std::move(req));
        if (session->run_state_ == Session::RunState::Idle) {
            session->run_state_ = Session::RunState::Queued;
            sched_.push(shard,
                        session->pending_.front().deadlineMicros,
                        session->placement_epoch_, session);
        }
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    metrics_.frameSubmitted();
    const size_t backlog = sched_.pendingFrames(shard);
    metrics_.observeQueueDepth(backlog);
    queue_depth_window_.observe(static_cast<double>(backlog));
    obs::TraceRecorder &tracer = obs::TraceRecorder::instance();
    if (tracer.enabled() && tracer.sampleEventTick()) {
        obs::recordInstant(obs::SpanKind::FrameSubmit, -1,
                           static_cast<int64_t>(backlog),
                           static_cast<int64_t>(
                               outstanding_.load(
                                   std::memory_order_relaxed)),
                           0, 0, id, frame_index);
    }
    return future;
}

StreamingServer::SubmitOutcome
StreamingServer::trySubmitFrame(SessionId id, Tensor input)
{
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);

    const int64_t now = clock_->nowMicros();
    SubmitOutcome outcome;

    FrameRequest req;
    req.input = std::move(input);
    req.enqueuedMicros = now;
    req.deadlineMicros = now + config_.slo.budget(session->slo());
    std::future<Tensor> future = req.result.get_future();

    size_t shard = 0;
    {
        MutexLock lock(session->queue_mu_);
        REUSE_ASSERT(!session->closing_,
                     "session " << id << " is closing");
        shard = session->shard_;
        if (config_.maxPendingPerSession > 0 &&
            session->pending_.size() >= config_.maxPendingPerSession) {
            // The bound trips when the session's own frames are the
            // backlog; one of them must complete before another fits.
            const int64_t per = sched_.serviceEstimateMicros(shard);
            outcome.retryAfterMicros = per > 0 ? per : 1000;
            outcome.status = SubmitOutcome::Status::Shed;
            metrics_.frameShed(session->slo(), now);
            obs::recordInstant(
                obs::SpanKind::FrameShed, -1,
                static_cast<int64_t>(session->pending_.size()),
                outcome.retryAfterMicros, 0, 0, id, 0);
            obs::ExemplarRecorder::instance().recordShed(
                id, static_cast<uint8_t>(session->slo()),
                outcome.retryAfterMicros, now);
            return outcome;
        }
        const Sched::Admit admit =
            sched_.admitFrame(shard, now, req.deadlineMicros);
        if (!admit.admitted) {
            outcome.retryAfterMicros =
                std::max<int64_t>(admit.retryAfterMicros, 1);
            outcome.status = SubmitOutcome::Status::Shed;
            metrics_.frameShed(session->slo(), now);
            obs::recordInstant(
                obs::SpanKind::FrameShed, -1,
                static_cast<int64_t>(
                    sched_.pendingFrames(shard)),
                outcome.retryAfterMicros, 0, 0, id, 0);
            obs::ExemplarRecorder::instance().recordShed(
                id, static_cast<uint8_t>(session->slo()),
                outcome.retryAfterMicros, now);
            return outcome;
        }
        req.frameIndex = session->next_frame_index_++;
        req.submitEpoch = session->placement_epoch_;
        session->pending_.push_back(std::move(req));
        if (session->run_state_ == Session::RunState::Idle) {
            session->run_state_ = Session::RunState::Queued;
            sched_.push(shard,
                        session->pending_.front().deadlineMicros,
                        session->placement_epoch_, session);
        }
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    metrics_.frameSubmitted();
    const size_t backlog = sched_.pendingFrames(shard);
    metrics_.observeQueueDepth(backlog);
    queue_depth_window_.observe(static_cast<double>(backlog));
    outcome.result = std::move(future);
    return outcome;
}

bool
StreamingServer::debugCorruptSessionState(SessionId id, uint64_t seed)
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    MutexLock lock(session->state_mu_);
    return session->state_.debugCorruptBuffer(seed);
}

Tensor
StreamingServer::executeFrame(Session &session, FrameRequest &req,
                              size_t exec_shard,
                              const DispatchContext &ctx,
                              FrameExecInfo *info)
{
    // Frame-delivery faults are decided outside the state lock: they
    // model the transport, not the execution.
    bool dropped = false;
    bool duplicated = false;
    if (fault::frameFaultsArmed()) {
        dropped = fault::shouldDropFrame();
        if (!dropped)
            duplicated = fault::shouldDuplicateFrame();
    }

    // Outermost trace scope on this worker: decides whether the frame
    // is sampled and stamps every nested span (engine, kernels) with
    // the session/frame identifiers.
    obs::FrameTraceScope frame_scope(session.id(), req.frameIndex);
    if (frame_scope.active() || frame_scope.staged()) {
        obs::TraceRecorder &tracer = obs::TraceRecorder::instance();
        // Queue wait measured on the serve clock (virtual in tests),
        // mapped onto the tracer's own timeline ending now.
        const int64_t wait_ns =
            std::max<int64_t>(
                0, clock_->nowMicros() - req.enqueuedMicros) *
            1000;
        const int64_t now_ns = tracer.nowNs();
        obs::recordSpanAt(obs::SpanKind::QueueWait, now_ns - wait_ns,
                          now_ns, session.id(), req.frameIndex);
        if (ctx.stolen) {
            obs::recordInstant(obs::SpanKind::Steal, -1,
                               static_cast<int64_t>(exec_shard),
                               static_cast<int64_t>(ctx.thiefShard),
                               0, 0, session.id(), req.frameIndex);
        }
    }

    const uint64_t sketch = ShardPlacer::inputSketch(req.input);
    Tensor output;
    ExecutionTrace trace;
    {
        MutexLock lock(session.state_mu_);
        if (dropped && session.has_last_output_) {
            // Stale-prediction delivery: answer with the previous
            // frame's output and leave the reuse state untouched, so
            // the stream continues exactly as if the frame never
            // arrived.
            output = session.last_output_;
            session.dropped_frames_ += 1;
            metrics_.frameDropped();
        } else {
            if (config_.validateState && session.checksum_valid_ &&
                session.state_.checksum() != session.state_checksum_) {
                // State corrupted between frames: degrade this frame
                // to a from-scratch execution and re-warm, instead of
                // silently poisoning every subsequent frame.
                session.state_.reset();
                session.cold_frames_.push_back(req.frameIndex);
                session.evicted_since_last_frame_ = false;
                if (info != nullptr)
                    info->cold = true;
                manager_.noteCorruptionRecovery(session);
                obs::recordInstant(obs::SpanKind::CorruptionRecovery,
                                   -1, 0, 0, 0, 0, session.id(),
                                   req.frameIndex);
            }
            if (session.evicted_since_last_frame_) {
                session.cold_frames_.push_back(req.frameIndex);
                session.evicted_since_last_frame_ = false;
                if (info != nullptr)
                    info->cold = true;
            }
            output = session.engine().execute(session.state_,
                                              req.input, trace);
            session.stats_.addTrace(trace);
            if (duplicated) {
                // At-least-once delivery: the frame executes again
                // against the updated state.
                output = session.engine().execute(session.state_,
                                                  req.input, trace);
                session.stats_.addTrace(trace);
                session.duplicated_frames_ += 1;
                metrics_.frameDuplicated();
            }
            session.last_output_ = output;
            session.has_last_output_ = true;
            if (config_.validateState) {
                session.state_checksum_ = session.state_.checksum();
                session.checksum_valid_ = true;
            }
        }
        session.frames_completed_ += 1;
        session.input_signature_ = sketch;
    }
    // Feeds similarity-aware placement of *future* sessions; the
    // newest sketch on the shard wins.
    placer_.noteSignature(exec_shard, sketch);
    return output;
}

bool
StreamingServer::dispatchEntry(Sched::Entry &entry,
                               const DispatchContext &ctx)
{
    std::shared_ptr<Session> session = std::move(entry.payload);
    FrameRequest req;
    size_t exec_shard = 0;
    uint64_t migrations = 0;
    {
        MutexLock lock(session->queue_mu_);
        if (entry.epoch != session->placement_epoch_) {
            // Stale: migration re-homed the session after this entry
            // was pushed (and re-queued it on the new shard).
            return false;
        }
        REUSE_ASSERT(session->run_state_ ==
                         Session::RunState::Queued,
                     "live run-queue entry for session "
                         << session->id() << " in state "
                         << static_cast<int>(session->run_state_));
        REUSE_ASSERT(!session->pending_.empty(),
                     "scheduled session has no pending frame");
        req = std::move(session->pending_.front());
        session->pending_.pop_front();
        session->run_state_ = Session::RunState::Executing;
        // The frame's admission accounting lives on the home shard at
        // claim time (migration only moves *pending* deadlines, so
        // this one stays put until completeFrame).
        exec_shard = session->shard_;
        migrations = session->placement_epoch_ - req.submitEpoch;
    }

    const int64_t started = clock_->nowMicros();
    FrameExecInfo exec_info;
    Tensor output =
        executeFrame(*session, req, exec_shard, ctx, &exec_info);
    manager_.noteExecution(*session);
    const int64_t completed = clock_->nowMicros();
    sched_.completeFrame(exec_shard, req.deadlineMicros,
                         completed - started);

    req.result.set_value(std::move(output));
    const bool missed = completed > req.deadlineMicros;
    if (missed)
        session->deadline_misses_.fetch_add(1,
                                            std::memory_order_relaxed);
    metrics_.frameCompleted(
        static_cast<double>(completed - req.enqueuedMicros),
        session->slo(), missed, completed);

    obs::ExemplarRecorder &exemplars =
        obs::ExemplarRecorder::instance();
    if (exemplars.armed()) {
        // Same thread that staged the spans in executeFrame: the
        // commit-or-discard decision consumes the thread-local buffer.
        obs::ExemplarRecorder::FrameMeta meta;
        meta.session = session->id();
        meta.frame = req.frameIndex;
        meta.sloClass = static_cast<uint8_t>(session->slo());
        meta.enqueuedMicros = req.enqueuedMicros;
        meta.completedMicros = completed;
        meta.deadlineMicros = req.deadlineMicros;
        meta.coldRewarm = exec_info.cold;
        meta.stolen = ctx.stolen;
        meta.migrations = static_cast<uint32_t>(migrations);
        exemplars.finishFrame(meta);
    }

    {
        MutexLock lock(session->queue_mu_);
        if (!session->pending_.empty()) {
            session->run_state_ = Session::RunState::Queued;
            sched_.push(session->shard_,
                        session->pending_.front().deadlineMicros,
                        session->placement_epoch_, session);
        } else {
            session->run_state_ = Session::RunState::Idle;
        }
    }

    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    {
        MutexLock lock(drain_mu_);
    }
    drain_cv_.notifyAll();
    return true;
}

void
StreamingServer::workerLoop(size_t worker_index)
{
    const size_t home = worker_index % sched_.shardCount();
    Sched::Entry entry;
    size_t src = home;
    while (sched_.popBlocking(home, config_.workStealing, entry, src)) {
        DispatchContext ctx;
        ctx.stolen = src != home;
        ctx.thiefShard = home;
        const bool ran = dispatchEntry(entry, ctx);
        if (ran && ctx.stolen)
            metrics_.workSteal();
        entry.payload.reset();
    }
}

bool
StreamingServer::runOne(size_t shard, bool allow_steal)
{
    REUSE_ASSERT(shard < sched_.shardCount(),
                 "shard " << shard << " out of range");
    for (;;) {
        Sched::Entry entry;
        size_t src = shard;
        if (!sched_.tryPop(shard, entry)) {
            if (!allow_steal || !sched_.trySteal(shard, entry, src))
                return false;
        }
        DispatchContext ctx;
        ctx.stolen = src != shard;
        ctx.thiefShard = shard;
        const bool ran = dispatchEntry(entry, ctx);
        if (ran) {
            if (ctx.stolen)
                metrics_.workSteal();
            return true;
        }
        // Stale entry consumed; keep pumping so callers can loop on
        // runOne() until it reports an empty queue.
    }
}

bool
StreamingServer::migrateSession(SessionId id, size_t to_shard)
{
    if (to_shard >= sched_.shardCount())
        return false;
    std::shared_ptr<Session> session = manager_.find(id);
    if (session == nullptr)
        return false;
    size_t from = 0;
    {
        MutexLock lock(session->queue_mu_);
        from = session->shard_;
        if (from == to_shard)
            return true;
        session->shard_ = to_shard;
        // Stales any entry still queued on the old shard; the worker
        // that pops it discards it instead of double-running.
        session->placement_epoch_ += 1;
        std::vector<int64_t> deadlines;
        deadlines.reserve(session->pending_.size());
        for (const FrameRequest &f : session->pending_)
            deadlines.push_back(f.deadlineMicros);
        sched_.moveFrames(from, to_shard, deadlines);
        if (session->run_state_ == Session::RunState::Queued) {
            sched_.push(to_shard,
                        session->pending_.front().deadlineMicros,
                        session->placement_epoch_, session);
        }
    }
    placer_.sessionMoved(from, to_shard, session->planFingerprint());
    metrics_.sessionMigrated();
    obs::recordInstant(obs::SpanKind::Migration, -1,
                       static_cast<int64_t>(from),
                       static_cast<int64_t>(to_shard), 0, 0, id, 0);
    return true;
}

void
StreamingServer::drain()
{
    MutexLock lock(drain_mu_);
    while (outstanding_.load(std::memory_order_relaxed) != 0)
        drain_cv_.wait(lock);
}

void
StreamingServer::closeSession(SessionId id)
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    {
        MutexLock lock(session->queue_mu_);
        session->closing_ = true;
    }
    // Wait for this session's pending frames to finish.
    {
        MutexLock lock(drain_mu_);
        for (;;) {
            {
                MutexLock qlock(session->queue_mu_);
                if (session->pending_.empty() &&
                    session->run_state_ == Session::RunState::Idle)
                    break;
            }
            drain_cv_.wait(lock);
        }
    }
    size_t shard = 0;
    {
        MutexLock lock(session->queue_mu_);
        shard = session->shard_;
    }
    placer_.sessionClosed(shard, session->planFingerprint());
    manager_.remove(id);
    metrics_.sessionClosed();
}

Session::Snapshot
StreamingServer::sessionSnapshot(SessionId id) const
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    return session->snapshot();
}

void
StreamingServer::publishStats(StatRegistry &registry) const
{
    metrics_.publishTo(registry);
    auto set = [&](const std::string &name, double v) {
        registry.get(name).set(v);
    };
    set("serve.sessions_live",
        static_cast<double>(manager_.sessionCount()));
    set("serve.state_bytes",
        static_cast<double>(manager_.chargedBytes()));
    set("serve.shards", static_cast<double>(sched_.shardCount()));
    size_t total_depth = 0;
    for (size_t i = 0; i < sched_.shardCount(); ++i) {
        const std::string base =
            "serve.shard." + std::to_string(i) + ".";
        const size_t depth = sched_.depth(i);
        total_depth += depth;
        set(base + "depth", static_cast<double>(depth));
        set(base + "pending_frames",
            static_cast<double>(sched_.pendingFrames(i)));
        set(base + "service_estimate_us",
            static_cast<double>(sched_.serviceEstimateMicros(i)));
        set(base + "sessions",
            static_cast<double>(placer_.sessionCount(i)));
    }
    set("serve.queue_depth", static_cast<double>(total_depth));
    // Queue-depth distribution over the recent submit window (the
    // all-time peak alone hides steady-state congestion).
    set("serve.queue_depth_p50", queue_depth_window_.quantile(0.50));
    set("serve.queue_depth_p95", queue_depth_window_.quantile(0.95));
    set("serve.queue_depth_p99", queue_depth_window_.quantile(0.99));
    set("serve.queue_depth_max", queue_depth_window_.max());
    // Process-wide compiled-plan cache: hits/misses tell whether
    // models served in this process share schedules (multi-model
    // serving recompiling per session would show up as misses).
    const ir::PlanCache::Stats plan_stats =
        ir::PlanCache::instance().stats();
    set("serve.plan_cache.size", static_cast<double>(plan_stats.size));
    set("serve.plan_cache.hits", static_cast<double>(plan_stats.hits));
    set("serve.plan_cache.misses",
        static_cast<double>(plan_stats.misses));
    // Exemplar-capture loss accounting: dropped > 0 means the ring is
    // overwriting tail evidence, staging overflows mean truncated
    // attribution — both must be visible from the scrape endpoint,
    // not just inside exported traces.
    const obs::ExemplarRecorder &exemplars =
        obs::ExemplarRecorder::instance();
    set("obs.trace.exemplars_committed",
        static_cast<double>(exemplars.committed()));
    set("obs.trace.exemplars_dropped",
        static_cast<double>(exemplars.dropped()));
    set("obs.trace.exemplar_staging_overflows",
        static_cast<double>(exemplars.stagingOverflows()));

    // Per-layer reuse health, aggregated across every live session of
    // each model.  Gauge names end in the EWMA-tracked suffixes the
    // MetricsExporter smooths over scrapes.
    std::map<std::string, std::vector<LayerReuseStats>> per_model;
    for (const auto &session : manager_.sessions()) {
        const std::vector<LayerReuseStats> layers =
            session->layerStats();
        std::vector<LayerReuseStats> &agg =
            per_model[session->engine().network().name()];
        if (agg.size() < layers.size())
            agg.resize(layers.size());
        for (size_t i = 0; i < layers.size(); ++i) {
            const LayerReuseStats &l = layers[i];
            LayerReuseStats &a = agg[i];
            a.layerName = l.layerName;
            a.kind = l.kind;
            a.reuseEnabled = a.reuseEnabled || l.reuseEnabled;
            a.executions += l.executions;
            a.firstExecutions += l.firstExecutions;
            a.driftRefreshes += l.driftRefreshes;
            a.inputsChecked += l.inputsChecked;
            a.inputsChanged += l.inputsChanged;
            a.inputsNearMatched += l.inputsNearMatched;
            a.macsFull += l.macsFull;
            a.macsPerformed += l.macsPerformed;
            a.macsFullAll += l.macsFullAll;
            a.macsPerformedAll += l.macsPerformedAll;
        }
    }
    for (const auto &[model, layers] : per_model) {
        double sim_sum = 0.0;
        double reuse_sum = 0.0;
        double near_sum = 0.0;
        int64_t enabled = 0;
        int64_t refreshes = 0;
        int64_t executions = 0;
        for (size_t i = 0; i < layers.size(); ++i) {
            const LayerReuseStats &l = layers[i];
            executions += l.executions + l.firstExecutions;
            refreshes += l.driftRefreshes;
            if (!l.reuseEnabled)
                continue;
            ++enabled;
            sim_sum += l.similarity();
            reuse_sum += l.computationReuse();
            near_sum += l.nearMatchRate();
            const std::string base = "serve.model." + model +
                                     ".layer" + std::to_string(i) +
                                     ".";
            set(base + "similarity", l.similarity());
            set(base + "reuse", l.computationReuse());
            set(base + "near_match", l.nearMatchRate());
            set(base + "occupancy",
                l.inputsChecked == 0
                    ? 0.0
                    : static_cast<double>(l.inputsChanged) /
                          static_cast<double>(l.inputsChecked));
        }
        const std::string base = "serve.model." + model + ".";
        set(base + "similarity",
            enabled == 0 ? 0.0
                         : sim_sum / static_cast<double>(enabled));
        set(base + "reuse",
            enabled == 0 ? 0.0
                         : reuse_sum / static_cast<double>(enabled));
        set(base + "near_match",
            enabled == 0 ? 0.0
                         : near_sum / static_cast<double>(enabled));
        set(base + "drift_refresh_rate",
            executions == 0 ? 0.0
                            : static_cast<double>(refreshes) /
                                  static_cast<double>(executions));
    }
}

} // namespace reuse
