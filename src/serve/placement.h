/**
 * @file
 * Similarity-aware shard placement.
 *
 * The reuse win on general-purpose CPUs is gated by keeping each
 * session's ReuseState cache-resident (ReuseSense, arXiv 2311.10487);
 * grouping *similar* inputs on the same worker further amplifies the
 * reuse signal (MERCURY, arXiv 2110.14904).  The placer therefore
 * routes a new session to the shard whose resident sessions (a) run
 * the same compiled plan — their weights and schedules are already
 * hot in that core group's caches — and (b) have recently seen inputs
 * with a similar coarse signature, falling back to least-loaded.
 *
 * The input signature is a 64-bit sign sketch of the frame (one bit
 * per sampled element); Hamming distance between sketches approximates
 * input dissimilarity well enough for a placement *heuristic* — it
 * never affects correctness, only which caches a session warms.
 */

#ifndef REUSE_DNN_SERVE_PLACEMENT_H
#define REUSE_DNN_SERVE_PLACEMENT_H

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "tensor/tensor.h"

namespace reuse {

/** Tracks per-shard residency and picks shards for new sessions. */
class ShardPlacer
{
  public:
    explicit ShardPlacer(size_t shards);

    size_t shardCount() const { return recent_signature_.size(); }

    /**
     * Picks a shard for a new session and registers it there.
     * @param plan_fingerprint Identity of the session's compiled plan
     *   (sessions of one model share it).
     * @param signature_hint Optional expected-input sketch (0 = none);
     *   e.g. the sketch of a representative frame of the stream.
     */
    size_t place(uint64_t plan_fingerprint, uint64_t signature_hint);

    /** Unregisters a closed session. */
    void sessionClosed(size_t shard, uint64_t plan_fingerprint);

    /** Re-registers a migrated session. */
    void sessionMoved(size_t from, size_t to,
                      uint64_t plan_fingerprint);

    /**
     * Records the sketch of a frame executed on `shard` (lock-free;
     * the newest sketch wins — "recent input signature").
     */
    void
    noteSignature(size_t shard, uint64_t signature)
    {
        recent_signature_[shard].store(signature,
                                       std::memory_order_relaxed);
    }

    /** Sessions currently placed on `shard`. */
    size_t sessionCount(size_t shard) const;

    /**
     * 64-bit sign sketch of a tensor: bit i is the sign of an evenly
     * sampled element.  Bit 0 is always set so a valid sketch is
     * never 0 (the "no signature" sentinel).
     */
    static uint64_t inputSketch(const Tensor &t);

    /** Bits differing between two sketches (Hamming distance). */
    static int hammingDistance(uint64_t a, uint64_t b);

  private:
    struct ShardInfo {
        /** plan fingerprint -> sessions of that plan on this shard. */
        std::unordered_map<uint64_t, size_t> planSessions;
        size_t sessions = 0;
    };

    mutable Mutex mu_;
    std::vector<ShardInfo> shards_ GUARDED_BY(mu_);
    /** Latest executed-frame sketch per shard (0 = none yet). */
    std::vector<std::atomic<uint64_t>> recent_signature_;
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_PLACEMENT_H
