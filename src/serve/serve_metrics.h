/**
 * @file
 * Thread-safe serving metrics: frame throughput, end-to-end latency
 * percentiles (queue wait + execution), queue depth and session
 * lifecycle counts.  Workers update these on every frame with relaxed
 * atomics; publishTo() surfaces a snapshot through the repo-wide
 * StatRegistry so the harness dumps serving counters next to the
 * simulator's.
 */

#ifndef REUSE_DNN_SERVE_SERVE_METRICS_H
#define REUSE_DNN_SERVE_SERVE_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/latency_histogram.h"
#include "common/stats.h"
#include "common/sync.h"
#include "serve/burn_rate.h"
#include "serve/slo.h"

namespace reuse {

/**
 * Aggregate metrics of one StreamingServer instance.
 */
class ServeMetrics
{
  public:
    /** A frame entered the admission queue. */
    void frameSubmitted()
    {
        frames_submitted_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * A frame finished executing.
     * @param latency_us Submit-to-completion latency in microseconds.
     */
    void frameCompleted(double latency_us)
    {
        frames_completed_.fetch_add(1, std::memory_order_relaxed);
        latency_.record(latency_us);
    }

    /**
     * Per-SLO-class completion: records the aggregate sample plus the
     * class's own latency histogram and deadline-miss count.
     */
    void frameCompleted(double latency_us, SloClass slo, bool missed)
    {
        frameCompleted(latency_us);
        const size_t c = static_cast<size_t>(slo);
        class_completed_[c].fetch_add(1, std::memory_order_relaxed);
        class_latency_[c].record(latency_us);
        if (missed)
            class_misses_[c].fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * As above, plus burn-rate accounting at serve-clock time
     * `now_micros` (the completion timestamp).
     */
    void frameCompleted(double latency_us, SloClass slo, bool missed,
                        int64_t now_micros)
    {
        frameCompleted(latency_us, slo, missed);
        burn_.record(slo, missed, now_micros);
        advanceEventTime(now_micros);
    }

    void sessionOpened()
    {
        sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    }

    void sessionClosed()
    {
        sessions_closed_.fetch_add(1, std::memory_order_relaxed);
    }

    /** A session's reuse buffers were dropped under memory pressure. */
    void eviction()
    {
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }

    /** A submit was rejected with a retry/backoff hint (overload). */
    void frameShed()
    {
        frames_shed_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Per-SLO-class shed (admission rejected the frame's deadline). */
    void frameShed(SloClass slo)
    {
        frameShed();
        class_shed_[static_cast<size_t>(slo)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /**
     * As above, plus burn-rate accounting: a shed frame burns error
     * budget exactly like a deadline miss.
     */
    void frameShed(SloClass slo, int64_t now_micros)
    {
        frameShed(slo);
        burn_.record(slo, true, now_micros);
        advanceEventTime(now_micros);
    }

    /** An idle worker took a frame from another shard's run queue. */
    void workSteal()
    {
        steals_.fetch_add(1, std::memory_order_relaxed);
    }

    /** A session was re-homed onto another shard. */
    void sessionMigrated()
    {
        migrations_.fetch_add(1, std::memory_order_relaxed);
    }

    /** A frame was answered with the previous output (fault drop). */
    void frameDropped()
    {
        frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    }

    /** A frame was executed twice (fault duplicate). */
    void frameDuplicated()
    {
        frames_duplicated_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Corrupted session state was detected and re-warmed. */
    void corruptionRecovery()
    {
        corruption_recoveries_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Tracks the deepest admission-queue occupancy observed. */
    void observeQueueDepth(size_t depth)
    {
        uint64_t cur = queue_peak_.load(std::memory_order_relaxed);
        while (depth > cur &&
               !queue_peak_.compare_exchange_weak(
                   cur, depth, std::memory_order_relaxed)) {
        }
    }

    uint64_t framesSubmitted() const
    {
        return frames_submitted_.load(std::memory_order_relaxed);
    }

    uint64_t framesCompleted() const
    {
        return frames_completed_.load(std::memory_order_relaxed);
    }

    uint64_t sessionsOpened() const
    {
        return sessions_opened_.load(std::memory_order_relaxed);
    }

    uint64_t sessionsClosed() const
    {
        return sessions_closed_.load(std::memory_order_relaxed);
    }

    uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    uint64_t framesShed() const
    {
        return frames_shed_.load(std::memory_order_relaxed);
    }

    uint64_t framesDropped() const
    {
        return frames_dropped_.load(std::memory_order_relaxed);
    }

    uint64_t framesDuplicated() const
    {
        return frames_duplicated_.load(std::memory_order_relaxed);
    }

    uint64_t corruptionRecoveries() const
    {
        return corruption_recoveries_.load(std::memory_order_relaxed);
    }

    uint64_t queuePeak() const
    {
        return queue_peak_.load(std::memory_order_relaxed);
    }

    uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    uint64_t migrations() const
    {
        return migrations_.load(std::memory_order_relaxed);
    }

    uint64_t classCompleted(SloClass slo) const
    {
        return class_completed_[static_cast<size_t>(slo)].load(
            std::memory_order_relaxed);
    }

    uint64_t classShed(SloClass slo) const
    {
        return class_shed_[static_cast<size_t>(slo)].load(
            std::memory_order_relaxed);
    }

    uint64_t classDeadlineMisses(SloClass slo) const
    {
        return class_misses_[static_cast<size_t>(slo)].load(
            std::memory_order_relaxed);
    }

    /** Deadline misses summed over every class. */
    uint64_t deadlineMisses() const
    {
        uint64_t total = 0;
        for (size_t c = 0; c < kSloClassCount; ++c)
            total += class_misses_[c].load(std::memory_order_relaxed);
        return total;
    }

    /** The multi-window error-budget burn tracker. */
    const SloBurnTracker &burn() const { return burn_; }

    /** Serve-clock time of the newest burn-accounted event. */
    int64_t lastEventMicros() const
    {
        return last_event_micros_.load(std::memory_order_relaxed);
    }

    /** Submit-to-completion latency distribution (microseconds). */
    const LatencyHistogram &latency() const { return latency_; }

    /** One class's submit-to-completion latency distribution. */
    const LatencyHistogram &latency(SloClass slo) const
    {
        return class_latency_[static_cast<size_t>(slo)];
    }

    /**
     * Zeroes every metric, atomically with respect to publishTo(): a
     * concurrent publisher sees either the pre-reset or the
     * post-reset counters, never a half-reset mix (e.g.
     * frames_completed > frames_submitted).  Hot-path recorders stay
     * lock-free; samples recorded while reset() runs may land on
     * either side of it.
     */
    void reset() EXCLUDES(snapshot_mu_);

    /**
     * Writes a snapshot of all metrics into `registry` under
     * "<prefix>." counter names (e.g. serve.frames_completed,
     * serve.latency_p99_us).
     */
    void publishTo(StatRegistry &registry,
                   const std::string &prefix = "serve") const
        EXCLUDES(snapshot_mu_);

  private:
    /** Monotonic max of burn-accounted event times (virtual-clock
     * safe: publishTo() evaluates windows at the newest event, not at
     * a wall clock the test clock never advances). */
    void advanceEventTime(int64_t now_micros)
    {
        int64_t cur = last_event_micros_.load(std::memory_order_relaxed);
        while (now_micros > cur &&
               !last_event_micros_.compare_exchange_weak(
                   cur, now_micros, std::memory_order_relaxed)) {
        }
    }

    /**
     * Serializes reset() against publishTo() so published snapshots
     * are never torn across a reset.  Never taken on the per-frame
     * recording paths.  The counters below stay lock-free atomics on
     * purpose (workers bump them every frame), so they carry no
     * GUARDED_BY; the mutex orders whole reset/publish passes, not
     * individual accesses.
     */
    mutable Mutex snapshot_mu_;
    std::atomic<uint64_t> frames_submitted_{0};
    std::atomic<uint64_t> frames_completed_{0};
    std::atomic<uint64_t> sessions_opened_{0};
    std::atomic<uint64_t> sessions_closed_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> frames_shed_{0};
    std::atomic<uint64_t> frames_dropped_{0};
    std::atomic<uint64_t> frames_duplicated_{0};
    std::atomic<uint64_t> corruption_recoveries_{0};
    std::atomic<uint64_t> queue_peak_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> migrations_{0};
    std::atomic<uint64_t> class_completed_[kSloClassCount]{};
    std::atomic<uint64_t> class_shed_[kSloClassCount]{};
    std::atomic<uint64_t> class_misses_[kSloClassCount]{};
    LatencyHistogram latency_;
    LatencyHistogram class_latency_[kSloClassCount];
    SloBurnTracker burn_;
    std::atomic<int64_t> last_event_micros_{0};
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_SERVE_METRICS_H
