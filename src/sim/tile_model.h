/**
 * @file
 * Multi-tile work distribution (Sec. IV-E of the paper).
 *
 * The accelerator integrates several tiles connected in a ring.  Work
 * is distributed per layer type: FC layers split output neurons
 * across tiles, convolutional layers split filters, and recurrent
 * layers assign LSTM gates to tiles.  Because these unit counts are
 * not always multiples of the tile count, some tiles idle part of the
 * time; this module quantifies that load imbalance and the ring
 * traffic needed to gather results.
 */

#ifndef REUSE_DNN_SIM_TILE_MODEL_H
#define REUSE_DNN_SIM_TILE_MODEL_H

#include <cstdint>

#include "nn/layer.h"
#include "nn/lstm.h"
#include "sim/params.h"

namespace reuse {

/** How one layer's work maps onto the tiles. */
struct TileWorkDistribution {
    /** Independent work units being distributed (neurons, filters,
     *  gates). */
    int64_t units = 0;
    /** Units assigned to the most loaded tile. */
    int64_t unitsPerTile = 0;
    /** Tiles that receive at least one unit. */
    int activeTiles = 0;
    /**
     * Slowdown of the real distribution versus a perfectly balanced
     * one: (unitsPerTile * tiles) / units, >= 1.
     */
    double imbalance = 1.0;
};

/**
 * Distributes `units` work items over `tiles` tiles (round-robin, as
 * the Data Master does).
 */
TileWorkDistribution distributeUnits(int64_t units, int tiles);

/**
 * Work units a layer kind distributes across tiles (Sec. IV-E):
 * output neurons for FC, output filters for conv, gates for LSTM.
 *
 * @param kind Layer type.
 * @param output_neurons Total output neurons of the layer.
 * @param output_channels Output feature maps (conv layers).
 */
int64_t layerParallelUnits(LayerKind kind, int64_t output_neurons,
                           int64_t output_channels);

/**
 * Ring bytes needed to gather one execution's outputs to the tile
 * that owns the I/O Buffer bank: every non-local tile forwards its
 * share, each hop carrying it one step around the ring (average
 * hop count tiles/2 on a bidirectional ring).
 */
int64_t ringGatherBytes(int64_t output_bytes, int tiles);

} // namespace reuse

#endif // REUSE_DNN_SIM_TILE_MODEL_H
