#include "tile_model.h"

#include "common/logging.h"
#include "common/math_utils.h"

namespace reuse {

TileWorkDistribution
distributeUnits(int64_t units, int tiles)
{
    REUSE_ASSERT(tiles > 0, "need at least one tile");
    TileWorkDistribution d;
    d.units = units;
    if (units <= 0) {
        d.unitsPerTile = 0;
        d.activeTiles = 0;
        d.imbalance = 1.0;
        return d;
    }
    d.unitsPerTile = ceilDiv(units, tiles);
    d.activeTiles = static_cast<int>(
        std::min<int64_t>(tiles, ceilDiv(units, d.unitsPerTile)));
    d.imbalance = static_cast<double>(d.unitsPerTile) *
                  static_cast<double>(tiles) /
                  static_cast<double>(units);
    return d;
}

int64_t
layerParallelUnits(LayerKind kind, int64_t output_neurons,
                   int64_t output_channels)
{
    switch (kind) {
      case LayerKind::FullyConnected:
        return output_neurons;
      case LayerKind::Conv2D:
      case LayerKind::Conv3D:
        return output_channels;
      case LayerKind::BiLstm:
      case LayerKind::Lstm:
        // Four gates per cell are spread across tiles (Sec. IV-E).
        return NumLstmGates;
      default:
        return output_neurons;
    }
}

int64_t
ringGatherBytes(int64_t output_bytes, int tiles)
{
    if (tiles <= 1)
        return 0;
    // (tiles - 1) of tiles shares travel, each an average of
    // tiles / 2 hops on the bidirectional ring.
    const double share =
        static_cast<double>(output_bytes) / static_cast<double>(tiles);
    const double travelling = share * static_cast<double>(tiles - 1);
    const double hops = static_cast<double>(tiles) / 2.0;
    return static_cast<int64_t>(travelling * hops);
}

} // namespace reuse
