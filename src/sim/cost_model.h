/**
 * @file
 * Per-layer analytical cost model of the accelerator (Sec. IV).
 *
 * The model converts a LayerExecRecord (what a layer execution did:
 * inputs checked/changed, MACs performed) into hardware events and
 * pipelined cycles.  The same function serves baseline and reuse
 * executions — a baseline record simply has every MAC performed —
 * which guarantees the two configurations are costed consistently.
 *
 * Timing rules (derived from the pipeline described in Figs. 7-8):
 *  - FC-like layers (FC, LSTM gates): one input feeds M output
 *    neurons; the correction/compute of one input takes
 *    max(1, ceil(M / lanes)) cycles; unchanged inputs only flow
 *    through the quantize-and-compare stage, which processes `lanes`
 *    inputs per cycle in the Compute Engine.
 *  - Conv layers: blocked streaming keeps the lanes busy across
 *    inputs; cycles = max(input-read floor, MACs / lanes).
 *  - Weight traffic is one weight word per MAC, from eDRAM when the
 *    layer is resident, from main memory otherwise; DRAM transfers
 *    overlap compute, so layer time is max(compute, DRAM).
 *  - Reuse corrections read and write the buffered outputs in the
 *    I/O Buffer (CNNs: in main memory, Sec. IV-C).
 */

#ifndef REUSE_DNN_SIM_COST_MODEL_H
#define REUSE_DNN_SIM_COST_MODEL_H

#include "core/exec_record.h"
#include "sim/events.h"
#include "sim/params.h"

namespace reuse {

/** Where a layer's data lives for this simulation. */
struct LayerCostContext {
    /** True when the layer's weights are resident in eDRAM. */
    bool weightsResident = true;
    /**
     * True when the layer's activations (and indices) stream through
     * main memory instead of staying in the I/O Buffer (CNN path).
     */
    bool dramActivations = false;
    /**
     * Total parameter bytes of the layer.  Non-resident conv layers
     * stream this footprint from DRAM once per execution (kernels
     * are shared across all inputs), rather than one word per MAC.
     */
    int64_t layerWeightBytes = 0;
};

/**
 * Computes the events of one layer execution described by `rec`.
 */
SimEvents layerEvents(const LayerExecRecord &rec,
                      const LayerCostContext &ctx,
                      const AcceleratorParams &params);

/** True for layer kinds costed with the FC-like pipeline. */
bool isFcLike(LayerKind kind);

/** True for layer kinds costed with the conv pipeline. */
bool isConvKind(LayerKind kind);

} // namespace reuse

#endif // REUSE_DNN_SIM_COST_MODEL_H
