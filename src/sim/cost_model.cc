#include "cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "nn/lstm.h"

namespace reuse {

bool
isFcLike(LayerKind kind)
{
    return kind == LayerKind::FullyConnected ||
           kind == LayerKind::BiLstm || kind == LayerKind::Lstm;
}

bool
isConvKind(LayerKind kind)
{
    return kind == LayerKind::Conv2D || kind == LayerKind::Conv3D;
}

namespace {

/**
 * FC-like layer: one input drives `per_input_outputs` neurons; a
 * processed (changed) input costs max(1, ceil(per_input_outputs /
 * lanes)) cycles; unchanged inputs flow through the quantize/compare
 * stage at `lanes` inputs per cycle.
 */
SimEvents
fcLikeEvents(const LayerExecRecord &rec, const LayerCostContext &ctx,
             const AcceleratorParams &p)
{
    SimEvents ev;
    const int64_t lanes = p.lanes();
    const int64_t n = std::max<int64_t>(rec.inputsTotal, 1);
    const int64_t per_input_outputs =
        rec.inputsTotal > 0 ? ceilDiv(rec.macsFull, rec.inputsTotal) : 0;
    const int64_t cycles_per_processed =
        std::max<int64_t>(1, ceilDiv(per_input_outputs, lanes));

    const bool steady_reuse = rec.reuseEnabled && !rec.firstExecution;

    if (steady_reuse) {
        // Quantize/compare every input, correct only the changed ones.
        ev.cycles = static_cast<double>(ceilDiv(n, lanes)) +
                    static_cast<double>(rec.inputsChanged) *
                        static_cast<double>(cycles_per_processed);
        ev.quantOps = rec.inputsTotal;
        ev.cmpOps = rec.inputsTotal;
        // Old/new centroid values for the changed inputs.
        ev.centroidBytes = rec.inputsChanged * 2 * 4;
        // Read each input and its stored index; write back the
        // indices that changed.
        ev.ioReadBytes = rec.inputsTotal *
                         (p.activationBytes + p.indexBytes);
        ev.ioWriteBytes = rec.inputsChanged * p.indexBytes;
        // Corrections: read previous outputs, add, write back.
        ev.ioReadBytes += rec.macsPerformed * p.activationBytes;
        ev.ioWriteBytes += rec.macsPerformed * p.activationBytes;
        // One weight word per performed MAC.
        const int64_t wbytes = rec.macsPerformed * p.weightBytes;
        if (ctx.weightsResident)
            ev.edramWeightBytes = wbytes;
        else
            ev.dramWeightBytes = wbytes;
        // Delta multiply + accumulate per MAC, plus the quantize
        // multiplies (scale by 1/step) in the CE.
        ev.fpMul = rec.macsPerformed + rec.inputsTotal;
        ev.fpAdd = rec.macsPerformed;
    } else {
        // From-scratch execution (baseline, or the first execution of
        // a reuse-enabled layer).
        ev.cycles = static_cast<double>(n) *
                    static_cast<double>(cycles_per_processed);
        ev.ioReadBytes = rec.inputsTotal * p.activationBytes;
        ev.ioWriteBytes = rec.outputsTotal * p.activationBytes;
        const int64_t wbytes =
            (rec.macsPerformed + rec.outputsTotal) * p.weightBytes;
        if (ctx.weightsResident)
            ev.edramWeightBytes = wbytes;
        else
            ev.dramWeightBytes = wbytes;
        ev.fpMul = rec.macsPerformed;
        ev.fpAdd = rec.macsPerformed + rec.outputsTotal; // + biases
        if (rec.reuseEnabled) {
            // First execution still quantizes and stores the indices.
            ev.quantOps = rec.inputsTotal;
            ev.fpMul += rec.inputsTotal;
            ev.ioWriteBytes += rec.inputsTotal * p.indexBytes;
        }
    }

    if (rec.kind == LayerKind::BiLstm || rec.kind == LayerKind::Lstm) {
        // Elementwise tail of the LSTM cells (Eqs. 7-8): sigmoid/tanh
        // evaluations and elementwise mul/add per gate output, always
        // computed from scratch.
        ev.fpMul += rec.outputsTotal;
        ev.fpAdd += rec.outputsTotal;
        ev.cycles += static_cast<double>(
            ceilDiv(rec.outputsTotal, p.lanes()));
        ev.ioWriteBytes += rec.outputsTotal / NumLstmGates *
                           p.activationBytes * 2; // h and c
    }

    // Results gathered over the ring to the I/O Buffer.
    ev.ringBytes = rec.outputsTotal * p.activationBytes;
    return ev;
}

/**
 * Conv layer: blocked streaming keeps lanes busy; cycles are the
 * maximum of the input-stream floor and the MAC throughput.
 */
SimEvents
convEvents(const LayerExecRecord &rec, const LayerCostContext &ctx,
           const AcceleratorParams &p)
{
    SimEvents ev;
    const int64_t lanes = p.lanes();
    const bool steady_reuse = rec.reuseEnabled && !rec.firstExecution;

    if (steady_reuse) {
        ev.cycles = std::max<double>(
            static_cast<double>(ceilDiv(rec.inputsTotal, lanes)),
            static_cast<double>(ceilDiv(rec.macsPerformed, lanes)));
        ev.quantOps = rec.inputsTotal;
        ev.cmpOps = rec.inputsTotal;
        ev.centroidBytes = rec.inputsChanged * 2 * 4;
        ev.fpMul = rec.macsPerformed + rec.inputsTotal;
        ev.fpAdd = rec.macsPerformed;
    } else {
        ev.cycles = std::max<double>(
            static_cast<double>(rec.inputsTotal),
            static_cast<double>(ceilDiv(rec.macsPerformed, lanes)));
        ev.fpMul = rec.macsPerformed;
        ev.fpAdd = rec.macsPerformed + rec.outputsTotal; // + biases
        if (rec.reuseEnabled) {
            ev.quantOps = rec.inputsTotal;
            ev.fpMul += rec.inputsTotal;
        }
    }

    // Weight traffic: one weight word per MAC is read from the
    // on-chip buffer; conv kernels are shared across inputs, so a
    // non-resident layer additionally streams its (small relative to
    // MACs) kernel footprint from DRAM once per execution.
    ev.edramWeightBytes = rec.macsPerformed * p.weightBytes;
    if (!ctx.weightsResident)
        ev.dramWeightBytes = ctx.layerWeightBytes;

    // Activation traffic: CNNs stream blocks through main memory
    // (Sec. IV-C); otherwise the I/O Buffer holds them.
    const int64_t in_bytes = rec.inputsTotal * p.activationBytes;
    const int64_t out_bytes = rec.outputsTotal * p.activationBytes;
    const int64_t idx_read = rec.inputsTotal * p.indexBytes;
    const int64_t idx_write = steady_reuse
                                  ? rec.inputsChanged * p.indexBytes
                                  : rec.inputsTotal * p.indexBytes;
    // Blocked streaming re-fetches a halo of (kernel - 1) elements
    // around every block in both spatial dimensions.
    const double halo_edge =
        static_cast<double>(p.blockEdge + rec.kernelExtent - 1) /
        static_cast<double>(p.blockEdge);
    const double halo = halo_edge * halo_edge;
    const int64_t in_bytes_dram =
        static_cast<int64_t>(in_bytes * halo);
    if (ctx.dramActivations) {
        if (steady_reuse) {
            // Every input block is fetched (all inputs must be
            // quantized and compared), but only output blocks whose
            // region contains a changed input are read, corrected and
            // written back; untouched blocks stay in main memory.
            const double touched =
                rec.inputsChecked > 0
                    ? static_cast<double>(rec.inputsChanged) /
                          static_cast<double>(rec.inputsChecked)
                    : 0.0;
            const int64_t out_touched =
                static_cast<int64_t>(out_bytes * touched);
            ev.dramActivationBytes += in_bytes_dram + idx_read +
                                      idx_write + 2 * out_touched;
            ev.ioReadBytes = in_bytes + out_touched;
            ev.ioWriteBytes = in_bytes + out_touched;
        } else {
            ev.dramActivationBytes += in_bytes_dram + out_bytes;
            if (rec.reuseEnabled)
                ev.dramActivationBytes += idx_read + idx_write;
            ev.ioReadBytes = in_bytes;
            ev.ioWriteBytes = in_bytes + out_bytes;
        }
    } else {
        ev.ioReadBytes = in_bytes + (rec.reuseEnabled ? idx_read : 0) +
                         (steady_reuse ? out_bytes : 0);
        ev.ioWriteBytes = out_bytes +
                          (rec.reuseEnabled ? idx_write : 0);
    }

    ev.ringBytes = rec.outputsTotal * p.activationBytes;
    return ev;
}

/**
 * Elementwise layers (activations, pooling, flatten): stream through
 * the CE at `lanes` elements per cycle.
 */
SimEvents
elementwiseEvents(const LayerExecRecord &rec, const LayerCostContext &ctx,
                  const AcceleratorParams &p)
{
    SimEvents ev;
    ev.cycles =
        static_cast<double>(ceilDiv(rec.inputsTotal, p.lanes()));
    ev.fpAdd = rec.inputsTotal;
    const int64_t in_bytes = rec.inputsTotal * p.activationBytes;
    const int64_t out_bytes = rec.outputsTotal * p.activationBytes;
    if (ctx.dramActivations) {
        ev.dramActivationBytes = in_bytes + out_bytes;
    }
    ev.ioReadBytes = in_bytes;
    ev.ioWriteBytes = out_bytes;
    return ev;
}

} // namespace

SimEvents
layerEvents(const LayerExecRecord &rec, const LayerCostContext &ctx,
            const AcceleratorParams &params)
{
    SimEvents ev;
    if (isFcLike(rec.kind)) {
        ev = fcLikeEvents(rec, ctx, params);
    } else if (isConvKind(rec.kind)) {
        ev = convEvents(rec, ctx, params);
    } else {
        ev = elementwiseEvents(rec, ctx, params);
    }

    // DRAM transfers overlap compute; the layer takes the longer of
    // the two.
    const double dram_cycles =
        static_cast<double>(ev.dramBytes()) / params.dramBytesPerCycle();
    ev.cycles = std::max(ev.cycles, dram_cycles);
    return ev;
}

} // namespace reuse
