#include "accelerator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/lstm.h"
#include "sim/cost_model.h"
#include "sim/io_buffer_model.h"

namespace reuse {

AcceleratorSim::AcceleratorSim(AcceleratorParams params)
    : params_(params)
{
}

SimResult
AcceleratorSim::simulate(const Network &network, AccelMode mode,
                         const std::vector<ExecutionTrace> &traces) const
{
    SimResult result;
    result.mode = mode;
    result.residency = planResidency(network, params_);
    result.perLayer.resize(network.layerCount());

    const bool dram_acts = usesDramActivations(network);
    const bool recurrent = network.isRecurrent();

    // Stream-start weight load from main memory (the accelerator is
    // power gated between streams; Sec. IV-A).
    {
        SimEvents load;
        if (recurrent && !result.residency.fullyResident) {
            // Each layer's weights are fetched once per sequence; the
            // per-sequence cost is charged below per trace.
        } else {
            load.dramWeightBytes = result.residency.initialLoadBytes;
            load.cycles = static_cast<double>(load.dramWeightBytes) /
                          params_.dramBytesPerCycle();
        }
        result.totals += load;
    }

    for (const ExecutionTrace &trace : traces) {
        for (const LayerExecRecord &rec : trace) {
            REUSE_ASSERT(rec.layerIndex < network.layerCount(),
                         "trace record for unknown layer");
            LayerCostContext ctx;
            ctx.weightsResident =
                result.residency.resident[rec.layerIndex];
            ctx.dramActivations = dram_acts;
            ctx.layerWeightBytes =
                network.layer(rec.layerIndex).paramCount() *
                params_.weightBytes;
            SimEvents ev = layerEvents(rec, ctx, params_);

            if (recurrent && !result.residency.fullyResident &&
                network.layer(rec.layerIndex).paramCount() > 0) {
                // Layer weights streamed from DRAM once per sequence,
                // overlapping compute (double-buffered loading).
                SimEvents load;
                load.dramWeightBytes =
                    network.layer(rec.layerIndex).paramCount() *
                    params_.weightBytes;
                const double load_cycles =
                    static_cast<double>(load.dramWeightBytes) /
                    params_.dramBytesPerCycle();
                ev.dramWeightBytes += load.dramWeightBytes;
                ev.cycles = std::max(ev.cycles, load_cycles);
            }

            result.perLayer[rec.layerIndex] += ev;
            result.totals += ev;
        }
        ++result.executions;
    }

    // Per-execution spill streaming for feed-forward networks is
    // already part of layerEvents (non-resident layers charge their
    // weight traffic to DRAM).

    result.cycles = result.totals.cycles;
    result.seconds = result.cycles * params_.secondsPerCycle();
    return result;
}

ExecutionTrace
synthesizeTrace(const Network &network,
                const std::vector<double> &layer_similarity,
                bool first_execution, int64_t sequence_length,
                const std::vector<double> &layer_reuse)
{
    REUSE_ASSERT(layer_similarity.size() == network.layerCount(),
                 "similarity vector sized for a different network");
    REUSE_ASSERT(layer_reuse.empty() ||
                     layer_reuse.size() == network.layerCount(),
                 "reuse vector sized for a different network");
    ExecutionTrace trace(network.layerCount());
    const std::vector<Shape> in_shapes = network.layerInputShapes();

    for (size_t li = 0; li < network.layerCount(); ++li) {
        const Layer &layer = network.layer(li);
        LayerExecRecord &rec = trace[li];
        rec.layerIndex = li;
        rec.kind = layer.kind();
        if (layer.kind() == LayerKind::Conv2D) {
            rec.kernelExtent =
                static_cast<const Conv2DLayer &>(layer).kernel();
        } else if (layer.kind() == LayerKind::Conv3D) {
            rec.kernelExtent =
                static_cast<const Conv3DLayer &>(layer).kernel();
        }

        const bool recurrent_layer = layer.isRecurrent();
        const int64_t steps = recurrent_layer ? sequence_length : 1;
        rec.steps = steps;

        int64_t inputs = in_shapes[li].numel() * steps;
        int64_t outputs = layer.outputShape(in_shapes[li]).numel() * steps;
        int64_t macs = layer.macCount(in_shapes[li]) * steps;
        if (layer.kind() == LayerKind::BiLstm) {
            // BiLSTM records also cover the recurrent inputs and the
            // four gate outputs per direction.
            const auto &lstm = static_cast<const BiLstmLayer &>(layer);
            inputs = steps * 2 * (lstm.inputDim() + lstm.cellDim());
            outputs = steps * 2 * NumLstmGates * lstm.cellDim();
        } else if (layer.kind() == LayerKind::Lstm) {
            const auto &lstm = static_cast<const LstmLayer &>(layer);
            inputs = steps * (lstm.inputDim() + lstm.cellDim());
            outputs = steps * NumLstmGates * lstm.cellDim();
        }
        rec.inputsTotal = inputs;
        rec.outputsTotal = outputs;
        rec.macsFull = macs;

        const double sim = layer_similarity[li];
        const double reuse_frac =
            (!layer_reuse.empty() && layer_reuse[li] >= 0.0)
                ? layer_reuse[li]
                : sim;
        if (sim < 0.0 || !layer.isReusable()) {
            rec.reuseEnabled = false;
            rec.firstExecution = false;
            rec.macsPerformed = macs;
            continue;
        }

        rec.reuseEnabled = true;
        if (first_execution) {
            rec.firstExecution = true;
            rec.macsPerformed = macs;
            continue;
        }
        rec.firstExecution = false;
        if (recurrent_layer && steps > 0) {
            // Within a sequence, only the first timestep of each
            // direction runs from scratch; the remaining steps reuse.
            const double steady =
                static_cast<double>(steps - 1) /
                static_cast<double>(steps);
            const double scratch = 1.0 - steady;
            rec.inputsChecked = static_cast<int64_t>(
                std::llround(steady * static_cast<double>(inputs)));
            rec.inputsChanged = static_cast<int64_t>(
                std::llround((1.0 - sim) *
                             static_cast<double>(rec.inputsChecked)));
            rec.macsPerformed = static_cast<int64_t>(std::llround(
                scratch * static_cast<double>(macs) +
                (1.0 - reuse_frac) * steady *
                    static_cast<double>(macs)));
        } else {
            rec.inputsChecked = inputs;
            rec.inputsChanged = static_cast<int64_t>(std::llround(
                (1.0 - sim) * static_cast<double>(inputs)));
            rec.macsPerformed = static_cast<int64_t>(std::llround(
                (1.0 - reuse_frac) * static_cast<double>(macs)));
        }
    }
    return trace;
}

SimResult
AcceleratorSim::estimate(const Network &network, AccelMode mode,
                         const std::vector<double> &layer_similarity,
                         int64_t executions, int64_t sequence_length,
                         const std::vector<double> &layer_reuse) const
{
    std::vector<double> sims = layer_similarity;
    std::vector<double> reuse_fracs = layer_reuse;
    if (mode == AccelMode::Baseline) {
        // Baseline disables reuse everywhere.
        std::fill(sims.begin(), sims.end(), -1.0);
        reuse_fracs.clear();
    }

    std::vector<ExecutionTrace> traces;
    traces.reserve(static_cast<size_t>(executions));
    for (int64_t e = 0; e < executions; ++e) {
        // Recurrent networks reset between sequences anyway; their
        // per-sequence from-scratch cost is already folded into each
        // synthesized trace, so no whole-trace first execution.
        const bool first = (e == 0) && mode == AccelMode::Reuse &&
                           !network.isRecurrent();
        traces.push_back(synthesizeTrace(network, sims, first,
                                         sequence_length, reuse_fracs));
    }
    return simulate(network, mode, traces);
}

} // namespace reuse
