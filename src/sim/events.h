/**
 * @file
 * Event counts produced by the accelerator cost model.  Every timing
 * and energy number in the simulator derives from these counts.
 */

#ifndef REUSE_DNN_SIM_EVENTS_H
#define REUSE_DNN_SIM_EVENTS_H

#include <cstdint>
#include <string>

namespace reuse {

/**
 * Hardware events of one layer execution (or an aggregate of many).
 *
 * Byte counts are raw data movement; op counts are individual
 * functional-unit operations.  `cycles` is the pipelined execution
 * time of the slice these events describe.
 */
struct SimEvents {
    double cycles = 0.0;

    /** Weight bytes read from the on-chip eDRAM Weights Buffer. */
    int64_t edramWeightBytes = 0;
    /** Weight bytes streamed from main memory (buffer misses). */
    int64_t dramWeightBytes = 0;
    /** Activation/index bytes moved to or from main memory (CNNs). */
    int64_t dramActivationBytes = 0;
    /** Bytes read from the SRAM I/O Buffer. */
    int64_t ioReadBytes = 0;
    /** Bytes written to the SRAM I/O Buffer. */
    int64_t ioWriteBytes = 0;
    /** Bytes read from the centroid table. */
    int64_t centroidBytes = 0;
    /** Bytes moved across the inter-tile ring. */
    int64_t ringBytes = 0;

    /** FP multiplications performed in the Compute Engine. */
    int64_t fpMul = 0;
    /** FP additions performed in the Compute Engine. */
    int64_t fpAdd = 0;
    /** Input quantization operations (divide + round in the CE). */
    int64_t quantOps = 0;
    /** Index comparisons (integer compare). */
    int64_t cmpOps = 0;

    SimEvents &operator+=(const SimEvents &o)
    {
        cycles += o.cycles;
        edramWeightBytes += o.edramWeightBytes;
        dramWeightBytes += o.dramWeightBytes;
        dramActivationBytes += o.dramActivationBytes;
        ioReadBytes += o.ioReadBytes;
        ioWriteBytes += o.ioWriteBytes;
        centroidBytes += o.centroidBytes;
        ringBytes += o.ringBytes;
        fpMul += o.fpMul;
        fpAdd += o.fpAdd;
        quantOps += o.quantOps;
        cmpOps += o.cmpOps;
        return *this;
    }

    /** Total main-memory traffic in bytes. */
    int64_t dramBytes() const
    {
        return dramWeightBytes + dramActivationBytes;
    }

    /** Total FP operations. */
    int64_t fpOps() const { return fpMul + fpAdd; }
};

} // namespace reuse

#endif // REUSE_DNN_SIM_EVENTS_H
