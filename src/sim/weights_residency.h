/**
 * @file
 * Weights Buffer residency planning (Sec. IV-A of the paper).
 *
 * If every layer's weights fit in the on-chip eDRAM they are loaded
 * from main memory once per input stream and reused across all
 * executions.  Otherwise the accelerator keeps as many layers as fit
 * resident, and the remaining layers' weights are streamed from main
 * memory on demand.  Recurrent networks process one layer across the
 * whole sequence before the next, so they only ever need one layer's
 * weights on chip at a time.
 */

#ifndef REUSE_DNN_SIM_WEIGHTS_RESIDENCY_H
#define REUSE_DNN_SIM_WEIGHTS_RESIDENCY_H

#include <vector>

#include "nn/network.h"
#include "sim/params.h"

namespace reuse {

/** Residency decision for the whole network. */
struct ResidencyPlan {
    /** Per-layer: true when the layer's weights stay in eDRAM. */
    std::vector<bool> resident;
    /** Bytes loaded from DRAM once at the start of every stream. */
    int64_t initialLoadBytes = 0;
    /**
     * Weight bytes streamed from DRAM for every execution (sum of
     * non-resident layers' weights); for recurrent networks this is
     * instead charged once per layer per sequence.
     */
    int64_t perExecutionStreamBytes = 0;
    /** Total weight bytes of the network. */
    int64_t totalWeightBytes = 0;
    /** True when the whole model fits on chip. */
    bool fullyResident = false;
};

/**
 * Plans weight residency for `network` under `params`.
 *
 * Layers are made resident greedily in execution order (the Data
 * Master prefetches front-to-back); `weightBytes` per element comes
 * from the params so the 8-bit fixed-point configuration shrinks the
 * footprint accordingly.
 */
ResidencyPlan planResidency(const Network &network,
                            const AcceleratorParams &params);

} // namespace reuse

#endif // REUSE_DNN_SIM_WEIGHTS_RESIDENCY_H
