#include "io_buffer_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_utils.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/lstm.h"

namespace reuse {

bool
usesDramActivations(const Network &network)
{
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const LayerKind kind = network.layer(li).kind();
        if (kind == LayerKind::Conv2D || kind == LayerKind::Conv3D)
            return true;
    }
    return false;
}

namespace {

/** Largest per-step activation width (elements) across the network. */
int64_t
maxActivationElems(const Network &network)
{
    int64_t max_elems = network.inputShape().numel();
    Shape current = network.inputShape();
    for (size_t li = 0; li < network.layerCount(); ++li) {
        current = network.layer(li).outputShape(current);
        max_elems = std::max(max_elems, current.numel());
    }
    return max_elems;
}

/** Largest input-channel and output-channel counts over conv layers. */
void
maxConvChannels(const Network &network, int64_t &max_in, int64_t &max_out,
                int64_t &max_kernel)
{
    max_in = 0;
    max_out = 0;
    max_kernel = 0;
    const std::vector<Shape> shapes = network.layerInputShapes();
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const Layer &layer = network.layer(li);
        if (layer.kind() == LayerKind::Conv2D) {
            const Shape out = layer.outputShape(shapes[li]);
            max_in = std::max(max_in, shapes[li].dim(0));
            max_out = std::max(max_out, out.dim(0));
            max_kernel = std::max(
                max_kernel,
                static_cast<const Conv2DLayer &>(layer).kernel());
        } else if (layer.kind() == LayerKind::Conv3D) {
            const Shape out = layer.outputShape(shapes[li]);
            max_in = std::max(max_in, shapes[li].dim(0));
            max_out = std::max(max_out, out.dim(0));
            max_kernel = std::max(
                max_kernel,
                static_cast<const Conv3DLayer &>(layer).kernel());
        }
    }
}

} // namespace

StorageFootprint
computeStorageFootprint(const Network &network,
                        const QuantizationPlan &plan,
                        const AcceleratorParams &params)
{
    StorageFootprint fp;
    const std::vector<Shape> in_shapes = network.layerInputShapes();
    const bool cnn_path = usesDramActivations(network);

    // --- Main memory: the model itself. ---
    fp.mainMemoryBaselineBytes =
        network.paramCount() * params.weightBytes;

    if (cnn_path) {
        // CNN: per-layer activations live in main memory.
        // Elementwise activations and flatten run in place, so they
        // add no distinct buffers.
        int64_t act_bytes = network.inputShape().numel();
        Shape current = network.inputShape();
        for (size_t li = 0; li < network.layerCount(); ++li) {
            const LayerKind kind = network.layer(li).kind();
            current = network.layer(li).outputShape(current);
            if (kind == LayerKind::Activation ||
                kind == LayerKind::Flatten)
                continue;
            act_bytes += current.numel();
        }
        fp.mainMemoryBaselineBytes +=
            act_bytes * params.activationBytes;

        // Reuse adds the index planes of quantized layers.
        int64_t index_bytes = 0;
        for (size_t li = 0; li < network.layerCount(); ++li) {
            if (plan.layer(li).enabled())
                index_bytes += in_shapes[li].numel() * params.indexBytes;
        }
        fp.mainMemoryReuseBytes =
            fp.mainMemoryBaselineBytes + index_bytes;
    } else {
        // MLP/RNN: activations stay on chip; no extra main memory.
        fp.mainMemoryReuseBytes = fp.mainMemoryBaselineBytes;
    }

    // --- I/O Buffer. ---
    if (cnn_path) {
        // Blocked path: one block per input feature map (with a halo
        // for the kernel footprint) plus one block per output feature
        // map (Sec. IV-C / Sec. V).
        int64_t max_in_ch = 0;
        int64_t max_out_ch = 0;
        int64_t max_kernel = 0;
        maxConvChannels(network, max_in_ch, max_out_ch, max_kernel);
        const int64_t block = params.blockEdge;
        // Input blocks carry a (kernel - 1) halo so corrections near
        // block borders see their full receptive fields.
        const int64_t in_edge = block + std::max<int64_t>(
                                            max_kernel - 1, 0);
        const int64_t in_block_bytes =
            in_edge * in_edge * params.activationBytes;
        const int64_t out_block_bytes =
            block * block * params.activationBytes;
        fp.ioBufferBaselineBytes =
            max_in_ch * in_block_bytes + max_out_ch * out_block_bytes;
        // Reuse: the index of every element of the input blocks.
        fp.ioBufferReuseBytes =
            fp.ioBufferBaselineBytes +
            max_in_ch * block * block * params.indexBytes;
    } else if (network.isRecurrent()) {
        // RNN: double-buffered per-step activations plus, with reuse,
        // the buffered pre-activations (inputs/outputs of the four
        // gates) and indices of one LSTM cell (Sec. IV-D).
        const int64_t max_elems = maxActivationElems(network);
        fp.ioBufferBaselineBytes =
            2 * max_elems * params.activationBytes;
        int64_t extra = 0;
        for (size_t li = 0; li < network.layerCount(); ++li) {
            if (!plan.layer(li).enabled())
                continue;
            const Layer &layer = network.layer(li);
            if (layer.kind() == LayerKind::Lstm) {
                const auto &lstm =
                    static_cast<const LstmLayer &>(layer);
                const int64_t per_cell =
                    NumLstmGates * lstm.cellDim() *
                        params.activationBytes +
                    (lstm.inputDim() + lstm.cellDim()) *
                        params.indexBytes;
                extra = std::max(extra, per_cell);
            } else if (layer.kind() == LayerKind::BiLstm) {
                const auto &lstm =
                    static_cast<const BiLstmLayer &>(layer);
                // Per direction: 4 gate pre-activation vectors plus
                // x- and h-index vectors.
                // The two directions run one after the other over
                // the sequence, so only one direction's gate
                // pre-activations and indices are live at a time.
                const int64_t per_dir =
                    NumLstmGates * lstm.cellDim() *
                        params.activationBytes +
                    (lstm.inputDim() + lstm.cellDim()) *
                        params.indexBytes;
                extra = std::max(extra, per_dir);
            } else {
                const int64_t out_elems =
                    layer.outputShape(in_shapes[li]).numel();
                extra = std::max<int64_t>(
                    extra, out_elems * params.activationBytes +
                               in_shapes[li].numel() * params.indexBytes);
            }
        }
        fp.ioBufferReuseBytes = fp.ioBufferBaselineBytes + extra;
    } else {
        // MLP: double-buffered widest layer; reuse additionally keeps
        // the outputs of every enabled layer alive across executions
        // plus their input indices (Fig. 7).
        const int64_t max_elems = maxActivationElems(network);
        fp.ioBufferBaselineBytes =
            2 * max_elems * params.activationBytes;
        int64_t extra = 0;
        for (size_t li = 0; li < network.layerCount(); ++li) {
            if (!plan.layer(li).enabled())
                continue;
            const Layer &layer = network.layer(li);
            extra += layer.outputShape(in_shapes[li]).numel() *
                     params.activationBytes;
            extra += in_shapes[li].numel() * params.indexBytes;
        }
        fp.ioBufferReuseBytes = fp.ioBufferBaselineBytes + extra;
    }

    // --- Centroid table: one entry per cluster per enabled layer. ---
    int64_t centroid_bytes = 0;
    for (size_t li = 0; li < plan.size(); ++li) {
        const LayerQuantization &lq = plan.layer(li);
        if (lq.input.has_value())
            centroid_bytes += lq.input->indexCount() * 4;
        if (lq.recurrent.has_value())
            centroid_bytes += lq.recurrent->indexCount() * 4;
    }
    fp.centroidTableBytes = centroid_bytes;
    return fp;
}

} // namespace reuse
