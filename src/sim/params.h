/**
 * @file
 * Accelerator configuration (Table II of the paper) and simulation
 * modes.
 */

#ifndef REUSE_DNN_SIM_PARAMS_H
#define REUSE_DNN_SIM_PARAMS_H

#include <cstdint>

namespace reuse {

/** Whether the accelerator runs with or without the reuse scheme. */
enum class AccelMode {
    Baseline,   ///< From-scratch execution of every layer.
    Reuse,      ///< Computation-reuse scheme enabled.
};

/**
 * Parameters of the modelled accelerator.  Defaults reproduce
 * Table II: 4 tiles, 32 FP multipliers + 32 FP adders per tile at
 * 500 MHz, 36 MB of eDRAM for weights, a 1152/1280 KB SRAM I/O
 * buffer, and a 16 GB/s LPDDR4 main memory.
 */
struct AcceleratorParams {
    /** Core clock in Hz. */
    double frequencyHz = 500e6;
    /** Number of accelerator tiles connected in a ring. */
    int tiles = 4;
    /** 32-bit FP multipliers per tile. */
    int multipliersPerTile = 32;
    /** 32-bit FP adders per tile. */
    int addersPerTile = 32;
    /** eDRAM Weights Buffer capacity in bytes (36 MB total). */
    int64_t weightsBufferBytes = 36ll * 1024 * 1024;
    /** SRAM I/O Buffer capacity, baseline configuration (bytes). */
    int64_t ioBufferBaselineBytes = 1152ll * 1024;
    /** SRAM I/O Buffer capacity with the reuse scheme (bytes). */
    int64_t ioBufferReuseBytes = 1280ll * 1024;
    /** Centroid-table storage (1.25 KB in the paper). */
    int64_t centroidTableBytes = 1280;
    /** Main-memory bandwidth in bytes/second (LPDDR4 dual channel). */
    double dramBandwidthBytesPerSec = 16e9;
    /** Main-memory capacity in bytes (4 GB LPDDR4). */
    int64_t dramBytes = 4ll * 1024 * 1024 * 1024;
    /** Conv blocking: spatial block edge (16x16x1 blocks, Sec. V). */
    int64_t blockEdge = 16;
    /** Bytes per weight element (4 = fp32; 1 = 8-bit fixed point). */
    int weightBytes = 4;
    /** Bytes per activation element. */
    int activationBytes = 4;
    /** Bytes used to store one quantization index in buffers/DRAM. */
    int indexBytes = 1;

    /** Total FP multipliers across tiles (the SIMD lane count). */
    int lanes() const { return tiles * multipliersPerTile; }

    /** Main-memory bytes transferable per core cycle. */
    double dramBytesPerCycle() const
    {
        return dramBandwidthBytesPerSec / frequencyHz;
    }

    /** Seconds per core cycle. */
    double secondsPerCycle() const { return 1.0 / frequencyHz; }
};

} // namespace reuse

#endif // REUSE_DNN_SIM_PARAMS_H
