/**
 * @file
 * I/O Buffer and main-memory capacity model (Table III of the paper).
 *
 * The baseline I/O Buffer double-buffers the activations flowing
 * between two layers (MLP/RNN) or one input block plus one output
 * block per feature map (blocked CNN path).  The reuse scheme adds
 * storage for the quantization indices and for the buffered outputs
 * of every reuse-enabled layer.
 */

#ifndef REUSE_DNN_SIM_IO_BUFFER_MODEL_H
#define REUSE_DNN_SIM_IO_BUFFER_MODEL_H

#include <cstdint>

#include "nn/network.h"
#include "quant/quantization_plan.h"
#include "sim/params.h"

namespace reuse {

/** Storage requirements of one network configuration. */
struct StorageFootprint {
    /** I/O Buffer bytes required by the baseline configuration. */
    int64_t ioBufferBaselineBytes = 0;
    /** I/O Buffer bytes required with the reuse scheme. */
    int64_t ioBufferReuseBytes = 0;
    /** Main-memory bytes in the baseline (weights + CNN activations). */
    int64_t mainMemoryBaselineBytes = 0;
    /** Main-memory bytes with the reuse scheme (adds CNN indices). */
    int64_t mainMemoryReuseBytes = 0;
    /** Centroid-table bytes needed by the reuse scheme. */
    int64_t centroidTableBytes = 0;
};

/** True when the network's activations stream through main memory
 *  (the blocked CNN path of Sec. IV-C). */
bool usesDramActivations(const Network &network);

/**
 * Computes the storage footprint of `network` under `plan` and
 * `params`, reproducing the methodology behind Table III.
 */
StorageFootprint computeStorageFootprint(const Network &network,
                                         const QuantizationPlan &plan,
                                         const AcceleratorParams &params);

} // namespace reuse

#endif // REUSE_DNN_SIM_IO_BUFFER_MODEL_H
