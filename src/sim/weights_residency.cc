#include "weights_residency.h"

namespace reuse {

ResidencyPlan
planResidency(const Network &network, const AcceleratorParams &params)
{
    ResidencyPlan plan;
    plan.resident.resize(network.layerCount(), false);

    // Parameter bytes per layer under the configured precision.
    std::vector<int64_t> layer_bytes(network.layerCount(), 0);
    for (size_t li = 0; li < network.layerCount(); ++li) {
        layer_bytes[li] =
            network.layer(li).paramCount() * params.weightBytes;
        plan.totalWeightBytes += layer_bytes[li];
    }

    if (network.isRecurrent()) {
        // One layer at a time is resident (Sec. V: for EESEN the
        // buffer "stores the weights of one layer at a time").  Each
        // layer's weights are fetched from DRAM once per sequence.
        int64_t max_layer = 0;
        for (size_t li = 0; li < network.layerCount(); ++li) {
            plan.resident[li] =
                layer_bytes[li] <= params.weightsBufferBytes;
            if (plan.resident[li] && layer_bytes[li] > max_layer)
                max_layer = layer_bytes[li];
        }
        if (plan.totalWeightBytes <= params.weightsBufferBytes) {
            plan.fullyResident = true;
            plan.initialLoadBytes = plan.totalWeightBytes;
            plan.perExecutionStreamBytes = 0;
        } else {
            plan.fullyResident = false;
            // Charged per layer per sequence by the simulator; the
            // initial load covers the first layer only.
            plan.initialLoadBytes = 0;
            plan.perExecutionStreamBytes = 0;
        }
        return plan;
    }

    // Feed-forward: make layers resident greedily in execution order.
    int64_t used = 0;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        if (layer_bytes[li] == 0) {
            plan.resident[li] = true;
            continue;
        }
        if (used + layer_bytes[li] <= params.weightsBufferBytes) {
            plan.resident[li] = true;
            used += layer_bytes[li];
            plan.initialLoadBytes += layer_bytes[li];
        } else {
            plan.resident[li] = false;
            plan.perExecutionStreamBytes += layer_bytes[li];
        }
    }
    plan.fullyResident =
        plan.perExecutionStreamBytes == 0;
    return plan;
}

} // namespace reuse
