/**
 * @file
 * Top-level accelerator simulator.
 *
 * The simulator is functional-plus-analytical: execution traces come
 * from the reuse engine (which performs the real arithmetic), and the
 * cost model converts each per-layer record into cycles and hardware
 * events.  An analytic entry point synthesizes traces from per-layer
 * similarity fractions, which lets paper-scale networks be costed
 * from similarity measured on reduced-scale functional runs (see
 * DESIGN.md).
 */

#ifndef REUSE_DNN_SIM_ACCELERATOR_H
#define REUSE_DNN_SIM_ACCELERATOR_H

#include <string>
#include <vector>

#include "core/exec_record.h"
#include "nn/network.h"
#include "sim/events.h"
#include "sim/params.h"
#include "sim/weights_residency.h"

namespace reuse {

/** Aggregated simulation outcome of one accelerator configuration. */
struct SimResult {
    /** Mode the simulation ran in. */
    AccelMode mode = AccelMode::Baseline;
    /** Total event counts, including stream-start weight loads. */
    SimEvents totals;
    /** Total cycles (== totals.cycles). */
    double cycles = 0.0;
    /** Wall-clock seconds at the configured frequency. */
    double seconds = 0.0;
    /** Number of whole-network executions simulated. */
    int64_t executions = 0;
    /** Per-layer aggregated events, indexed like the network. */
    std::vector<SimEvents> perLayer;
    /** Residency plan used. */
    ResidencyPlan residency;

    /** Cycles per execution. */
    double cyclesPerExecution() const
    {
        return executions > 0 ? cycles / static_cast<double>(executions)
                              : cycles;
    }
};

/**
 * Analytical simulator of the reuse-enabled DNN accelerator.
 */
class AcceleratorSim
{
  public:
    /**
     * @param params Hardware configuration (Table II defaults).
     */
    explicit AcceleratorSim(AcceleratorParams params = {});

    /** The hardware configuration in use. */
    const AcceleratorParams &params() const { return params_; }

    /**
     * Costs a stream of execution traces produced by the reuse
     * engine.  `traces` holds one ExecutionTrace per execution (for
     * recurrent networks: per sequence, with per-layer records
     * aggregated over timesteps).  The first trace's stream-start
     * weight load from main memory is included.
     */
    SimResult simulate(const Network &network, AccelMode mode,
                       const std::vector<ExecutionTrace> &traces) const;

    /**
     * Analytic estimate: synthesizes `executions` steady-state traces
     * (plus one from-scratch first execution) from per-layer input
     * similarity.  `layer_similarity[li]` in [0,1] gives the fraction
     * of unchanged inputs for reuse-enabled layer li; a negative
     * value marks the layer as reuse-disabled.  `layer_reuse` (same
     * indexing, may be empty) gives the fraction of MACs avoided,
     * which for conv layers exceeds the input similarity because
     * border inputs drive fewer outputs; when empty it defaults to
     * the similarity.  For recurrent networks, `sequence_length`
     * scales the per-trace work.
     */
    SimResult estimate(const Network &network, AccelMode mode,
                       const std::vector<double> &layer_similarity,
                       int64_t executions,
                       int64_t sequence_length = 1,
                       const std::vector<double> &layer_reuse = {}) const;

  private:
    AcceleratorParams params_;
};

/**
 * Builds the synthetic execution trace used by AcceleratorSim::
 * estimate(): one record per layer with counts derived from layer
 * shapes and the given similarity.
 */
ExecutionTrace synthesizeTrace(const Network &network,
                               const std::vector<double> &layer_similarity,
                               bool first_execution,
                               int64_t sequence_length,
                               const std::vector<double> &layer_reuse = {});

} // namespace reuse

#endif // REUSE_DNN_SIM_ACCELERATOR_H
