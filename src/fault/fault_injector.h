/**
 * @file
 * Deterministic, seedable fault injection for the reuse paths.
 *
 * Eq. 10 makes every frame's output depend on buffered per-stream
 * state (previous quantized indices, previous outputs, gate
 * pre-activations), so a single corrupted buffer silently poisons all
 * subsequent frames until a refresh.  The injector plants exactly the
 * corruptions that matter for that failure mode — bit-flips in the
 * buffered outputs or indices, quantizer-scale drift, stale (partially
 * applied) change lists, dropped/duplicated frames, and worker
 * stalls — at a deterministic, seed-controlled point in the stream, so
 * tests and the fault-campaign CLI can assert that the drift guard /
 * refresh / re-warm machinery actually restores bit-exact outputs.
 *
 * The hooks compile to inline no-ops unless the build defines
 * REUSE_FAULT_INJECTION (default ON outside Release; see the
 * top-level CMakeLists).  When compiled in but disarmed, each hook
 * costs one relaxed atomic load.
 *
 * Corruptions are bounded on purpose: float flips touch mantissa bits
 * only and index flips touch the low 8 bits, so a corrupted value
 * stays finite and in the representable index range.  This keeps the
 * injected runs sanitizer-clean (no NaN fed to lround) while still
 * producing silently-wrong outputs — the failure mode under test.
 */

#ifndef REUSE_DNN_FAULT_FAULT_INJECTOR_H
#define REUSE_DNN_FAULT_FAULT_INJECTOR_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/sync.h"
#include "kernels/change_list.h"
#include "kernels/quant_scan.h"
#include "nn/layer.h"

namespace reuse {
namespace fault {

/** The registered fault types. */
enum class FaultKind {
    /** Flip a mantissa bit in a buffered output / pre-activation. */
    OutputBitFlip,
    /** Flip a low bit in a buffered quantized-input index. */
    IndexBitFlip,
    /** Multiply the quantizer step by scaleFactor for one scan. */
    QuantScaleDrift,
    /** Truncate a scanned change list before it is applied. */
    StaleChangeList,
    /** Drop a frame before execution (server/driver level). */
    DroppedFrame,
    /** Execute a frame twice (at-least-once delivery). */
    DuplicatedFrame,
    /** Stall a worker inside kernel execution. */
    WorkerStall,
    /**
     * Kill the process from inside the engine (panic) — exercises the
     * postmortem flight recorder, not the recovery machinery.  Keep
     * last: campaigns sweep the recoverable prefix only.
     */
    EngineFatal,
};

constexpr int kNumFaultKinds = 8;

/**
 * Kinds the recovery machinery is expected to survive (everything
 * before EngineFatal).  fault_campaign --all sweeps exactly these.
 */
constexpr int kNumRecoverableFaultKinds = 7;

/** Stable lower-case name of a fault kind (CLI flag values). */
const char *faultKindName(FaultKind kind);

/** Parses a faultKindName(); nullopt when unknown. */
std::optional<FaultKind> parseFaultKind(const std::string &name);

/** True when the build compiled the injection hooks in. */
constexpr bool
injectionCompiledIn()
{
#if REUSE_FAULT_INJECTION
    return true;
#else
    return false;
#endif
}

/**
 * One armed fault: what to inject, where, and when.
 *
 * Hook invocations that match `kind` (and `layerKind`, when set) are
 * counted; the fault fires on the `fireAtInvocation`-th matching
 * invocation and keeps firing on subsequent matches until `maxFires`
 * is reached.  All randomness (victim element, bit position) derives
 * from `seed`, so a given plan corrupts identically on every run.
 */
struct FaultPlan {
    FaultKind kind = FaultKind::OutputBitFlip;
    /** Only hooks reporting this layer kind fire; nullopt = any. */
    std::optional<LayerKind> layerKind;
    /** 1-based matching invocation on which the fault first fires. */
    uint64_t fireAtInvocation = 1;
    /** Maximum times the fault fires; <0 = unlimited. */
    int maxFires = 1;
    /** Seed for the victim-selection RNG. */
    uint64_t seed = 1;
    /** Step multiplier for QuantScaleDrift. */
    double scaleFactor = 1.5;
    /**
     * Stall duration for WorkerStall in microseconds; negative means
     * block until disarm() (deterministic overload in tests).
     */
    int64_t stallMicros = 200;
};

/**
 * Process-wide fault injector.  arm() replaces the active plan and
 * resets the invocation/fire counters; disarm() deactivates it and
 * releases any thread blocked in a WorkerStall.  Thread-safe.
 */
class FaultInjector
{
  public:
    static FaultInjector &global();

    /** Activates `plan`, resetting counters; replaces any prior plan. */
    void arm(const FaultPlan &plan);

    /** Deactivates injection and unblocks blocking stalls. */
    void disarm();

    /** True while a plan is armed. */
    bool armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Matching hook invocations observed since arm(). */
    uint64_t invocations() const;

    /** Times the armed fault actually fired since arm(). */
    uint64_t fires() const;

    /** Threads currently blocked inside a WorkerStall. */
    uint64_t stalledCount() const
    {
        return stalled_.load(std::memory_order_acquire);
    }

    /** True when a DroppedFrame/DuplicatedFrame plan is armed. */
    bool frameFaultsArmed() const;

    // ------------------------------------------------------------------
    // Hooks, called from the reuse paths.  Each is a no-op unless a
    // matching plan is armed.
    // ------------------------------------------------------------------

    /** OutputBitFlip: flips a mantissa bit of one element of `data`. */
    void corruptFloats(LayerKind kind, float *data, int64_t n);

    /** IndexBitFlip: flips a low bit of one element of `data`. */
    void corruptIndices(LayerKind kind, int32_t *data, int64_t n);

    /** QuantScaleDrift: perturbs the scan step for this one scan. */
    void perturbScanParams(LayerKind kind,
                           kernels::QuantScanParams &params);

    /** StaleChangeList: truncates `changes` before it is applied. */
    void truncateChanges(LayerKind kind, kernels::ChangeList &changes);

    /** DroppedFrame: true when the current frame must be dropped. */
    bool shouldDropFrame();

    /** DuplicatedFrame: true when the current frame runs twice. */
    bool shouldDuplicateFrame();

    /** WorkerStall: sleeps (or blocks until disarm) when firing. */
    void maybeStall();

    /** EngineFatal: panics the process when firing (postmortem test). */
    void maybeFatal();

  private:
    FaultInjector() = default;

    /**
     * Counts a matching invocation and decides whether to fire;
     * returns the per-fire RNG stream when firing.
     */
    bool shouldFire(FaultKind hook_kind,
                    std::optional<LayerKind> layer_kind,
                    uint64_t *rng_seed);

    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> stalled_{0};

    mutable Mutex mu_;
    CondVar disarm_cv_;
    FaultPlan plan_ GUARDED_BY(mu_);
    uint64_t invocations_ GUARDED_BY(mu_) = 0;
    uint64_t fires_ GUARDED_BY(mu_) = 0;
    /** Bumped by arm()/disarm(); wakes blocking stalls. */
    uint64_t epoch_ GUARDED_BY(mu_) = 0;
};

// ----------------------------------------------------------------------
// Free-function hooks used by src/core and src/serve.  When the build
// compiles injection out these are inline no-ops, so the reuse paths
// carry zero overhead.
// ----------------------------------------------------------------------

#if REUSE_FAULT_INJECTION

inline void
corruptFloats(LayerKind kind, float *data, int64_t n)
{
    FaultInjector::global().corruptFloats(kind, data, n);
}

inline void
corruptIndices(LayerKind kind, int32_t *data, int64_t n)
{
    FaultInjector::global().corruptIndices(kind, data, n);
}

inline void
perturbScanParams(LayerKind kind, kernels::QuantScanParams &params)
{
    FaultInjector::global().perturbScanParams(kind, params);
}

inline void
truncateChanges(LayerKind kind, kernels::ChangeList &changes)
{
    FaultInjector::global().truncateChanges(kind, changes);
}

inline bool
shouldDropFrame()
{
    return FaultInjector::global().shouldDropFrame();
}

inline bool
shouldDuplicateFrame()
{
    return FaultInjector::global().shouldDuplicateFrame();
}

inline void
maybeStall()
{
    FaultInjector::global().maybeStall();
}

inline void
maybeFatal()
{
    FaultInjector::global().maybeFatal();
}

inline bool
frameFaultsArmed()
{
    return FaultInjector::global().frameFaultsArmed();
}

#else

inline void corruptFloats(LayerKind, float *, int64_t) {}
inline void corruptIndices(LayerKind, int32_t *, int64_t) {}
inline void perturbScanParams(LayerKind, kernels::QuantScanParams &) {}
inline void truncateChanges(LayerKind, kernels::ChangeList &) {}
inline bool shouldDropFrame() { return false; }
inline bool shouldDuplicateFrame() { return false; }
inline void maybeStall() {}
inline void maybeFatal() {}
inline bool frameFaultsArmed() { return false; }

#endif // REUSE_FAULT_INJECTION

} // namespace fault
} // namespace reuse

#endif // REUSE_DNN_FAULT_FAULT_INJECTOR_H
