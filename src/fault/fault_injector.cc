#include "fault_injector.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "kernels/thread_pool.h"

namespace reuse {
namespace fault {

namespace {

/** splitmix64: tiny, high-quality, and seed-deterministic. */
uint64_t
nextRandom(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::OutputBitFlip: return "output-bit-flip";
      case FaultKind::IndexBitFlip: return "index-bit-flip";
      case FaultKind::QuantScaleDrift: return "quant-scale-drift";
      case FaultKind::StaleChangeList: return "stale-change-list";
      case FaultKind::DroppedFrame: return "dropped-frame";
      case FaultKind::DuplicatedFrame: return "duplicated-frame";
      case FaultKind::WorkerStall: return "worker-stall";
      case FaultKind::EngineFatal: return "engine-fatal";
    }
    return "unknown";
}

std::optional<FaultKind>
parseFaultKind(const std::string &name)
{
    for (int i = 0; i < kNumFaultKinds; ++i) {
        const FaultKind kind = static_cast<FaultKind>(i);
        if (name == faultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    {
        MutexLock lock(mu_);
        plan_ = plan;
        invocations_ = 0;
        fires_ = 0;
        ++epoch_;
    }
    // The stall hook reaches the kernel thread pool through a generic
    // chunk hook (the kernel layer sits below src/fault and cannot
    // link it).  Installing is idempotent and the hook no-ops while
    // disarmed.
    kernels::KernelThreadPool::setChunkHook(
        [] { FaultInjector::global().maybeStall(); });
    armed_.store(true, std::memory_order_release);
    disarm_cv_.notifyAll();
}

void
FaultInjector::disarm()
{
    armed_.store(false, std::memory_order_release);
    {
        MutexLock lock(mu_);
        ++epoch_;
    }
    disarm_cv_.notifyAll();
}

uint64_t
FaultInjector::invocations() const
{
    MutexLock lock(mu_);
    return invocations_;
}

uint64_t
FaultInjector::fires() const
{
    MutexLock lock(mu_);
    return fires_;
}

bool
FaultInjector::frameFaultsArmed() const
{
    if (!armed())
        return false;
    MutexLock lock(mu_);
    return plan_.kind == FaultKind::DroppedFrame ||
           plan_.kind == FaultKind::DuplicatedFrame;
}

bool
FaultInjector::shouldFire(FaultKind hook_kind,
                          std::optional<LayerKind> layer_kind,
                          uint64_t *rng_seed)
{
    MutexLock lock(mu_);
    if (!armed_.load(std::memory_order_relaxed))
        return false;
    if (plan_.kind != hook_kind)
        return false;
    if (plan_.layerKind.has_value() &&
        (!layer_kind.has_value() || *plan_.layerKind != *layer_kind))
        return false;
    ++invocations_;
    if (invocations_ < plan_.fireAtInvocation)
        return false;
    if (plan_.maxFires >= 0 &&
        fires_ >= static_cast<uint64_t>(plan_.maxFires))
        return false;
    ++fires_;
    // An independent stream per fire keeps repeated fires from
    // corrupting the same element over and over.
    *rng_seed = plan_.seed * 0x2545f4914f6cdd1dull + fires_;
    return true;
}

void
FaultInjector::corruptFloats(LayerKind kind, float *data, int64_t n)
{
    if (!armed() || data == nullptr || n <= 0)
        return;
    uint64_t seed = 0;
    if (!shouldFire(FaultKind::OutputBitFlip, kind, &seed))
        return;
    const int64_t victim =
        static_cast<int64_t>(nextRandom(seed) % static_cast<uint64_t>(n));
    const uint32_t bit = static_cast<uint32_t>(nextRandom(seed) % 23);
    uint32_t raw = 0;
    std::memcpy(&raw, &data[victim], sizeof(raw));
    raw ^= (1u << bit);
    std::memcpy(&data[victim], &raw, sizeof(raw));
}

void
FaultInjector::corruptIndices(LayerKind kind, int32_t *data, int64_t n)
{
    if (!armed() || data == nullptr || n <= 0)
        return;
    uint64_t seed = 0;
    if (!shouldFire(FaultKind::IndexBitFlip, kind, &seed))
        return;
    const int64_t victim =
        static_cast<int64_t>(nextRandom(seed) % static_cast<uint64_t>(n));
    const uint32_t bit = static_cast<uint32_t>(nextRandom(seed) % 8);
    data[victim] ^= static_cast<int32_t>(1u << bit);
}

void
FaultInjector::perturbScanParams(LayerKind kind,
                                 kernels::QuantScanParams &params)
{
    if (!armed())
        return;
    uint64_t seed = 0;
    if (!shouldFire(FaultKind::QuantScaleDrift, kind, &seed))
        return;
    double scale = 1.5;
    {
        MutexLock lock(mu_);
        scale = plan_.scaleFactor;
    }
    params.step = static_cast<float>(params.step * scale);
}

void
FaultInjector::truncateChanges(LayerKind kind,
                               kernels::ChangeList &changes)
{
    if (!armed() || changes.empty())
        return;
    uint64_t seed = 0;
    if (!shouldFire(FaultKind::StaleChangeList, kind, &seed))
        return;
    // Keep a strict prefix: at least one scanned change goes missing,
    // so the buffered outputs are updated against stale corrections
    // while the prev-indices already advanced (the dangerous half of
    // a torn scan/apply).
    const size_t keep =
        static_cast<size_t>(nextRandom(seed) % changes.size());
    changes.truncate(keep);
}

bool
FaultInjector::shouldDropFrame()
{
    if (!armed())
        return false;
    uint64_t seed = 0;
    return shouldFire(FaultKind::DroppedFrame, std::nullopt, &seed);
}

bool
FaultInjector::shouldDuplicateFrame()
{
    if (!armed())
        return false;
    uint64_t seed = 0;
    return shouldFire(FaultKind::DuplicatedFrame, std::nullopt, &seed);
}

void
FaultInjector::maybeStall()
{
    if (!armed())
        return;
    uint64_t seed = 0;
    if (!shouldFire(FaultKind::WorkerStall, std::nullopt, &seed))
        return;
    int64_t stall_micros = 0;
    uint64_t epoch = 0;
    {
        MutexLock lock(mu_);
        stall_micros = plan_.stallMicros;
        epoch = epoch_;
    }
    if (stall_micros >= 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(stall_micros));
        return;
    }
    // Blocking stall: park until disarm() (or a new plan) so tests can
    // hold a worker provably busy while probing overload shedding.
    stalled_.fetch_add(1, std::memory_order_acq_rel);
    {
        MutexLock lock(mu_);
        while (epoch_ == epoch &&
               armed_.load(std::memory_order_relaxed))
            disarm_cv_.wait(lock);
    }
    stalled_.fetch_sub(1, std::memory_order_acq_rel);
}

void
FaultInjector::maybeFatal()
{
    if (!armed())
        return;
    uint64_t seed = 0;
    if (!shouldFire(FaultKind::EngineFatal, std::nullopt, &seed))
        return;
    panic("fault: injected engine fatal");
}

} // namespace fault
} // namespace reuse
