/** @file Unit tests for the static model validator. */

#include <gtest/gtest.h>

#include <limits>

#include "analysis/model_validator.h"
#include "common/random.h"
#include "core/reuse_engine.h"
#include "harness/workload_setup.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "nn/pooling.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"

namespace reuse {
namespace {

/** Well-formed two-FC network with reuse enabled on both FCs. */
struct ValidFixture {
    Rng rng{91};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    ValidFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }
};

TEST(ModelValidator, ReuseSafetyClassification)
{
    EXPECT_TRUE(isIncrementallyUpdatable(LayerKind::FullyConnected));
    EXPECT_TRUE(isIncrementallyUpdatable(LayerKind::Conv2D));
    EXPECT_TRUE(isIncrementallyUpdatable(LayerKind::Conv3D));
    EXPECT_TRUE(isIncrementallyUpdatable(LayerKind::Lstm));
    EXPECT_TRUE(isIncrementallyUpdatable(LayerKind::BiLstm));
    EXPECT_FALSE(isIncrementallyUpdatable(LayerKind::MaxPool2D));
    EXPECT_FALSE(isIncrementallyUpdatable(LayerKind::MaxPool3D));
    EXPECT_FALSE(isIncrementallyUpdatable(LayerKind::Activation));
    EXPECT_FALSE(isIncrementallyUpdatable(LayerKind::Flatten));
}

TEST(ModelValidator, ValidModelProducesNoFindings)
{
    ValidFixture f;
    const DiagnosticReport report = validateModel(f.net, f.plan);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(report.count(Severity::Warning), 0u);
    // Informational summaries are still emitted.
    EXPECT_TRUE(report.has(diag::kModelSummary));
    EXPECT_TRUE(report.has(diag::kFootprintSummary));
}

TEST(ModelValidator, InfoCanBeSuppressed)
{
    ValidFixture f;
    ValidatorOptions options;
    options.emitInfo = false;
    const DiagnosticReport report =
        validateModel(f.net, f.plan, options);
    EXPECT_TRUE(report.diagnostics().empty());
}

TEST(ModelValidator, EmptyNetworkIsSH001)
{
    Network net("empty", Shape({4}));
    const DiagnosticReport report = validateShapes(net);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.has(diag::kEmptyNetwork));
}

TEST(ModelValidator, MismatchedLayerChainIsSH002)
{
    Network net("broken", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 16));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 32, 4));
    const DiagnosticReport report = validateShapes(net);
    ASSERT_TRUE(report.hasErrors());
    const Diagnostic *d = report.find(diag::kShapeMismatch);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->layer, 1);
    EXPECT_EQ(d->layerName, "FC2");
}

TEST(ModelValidator, DegenerateInputShapeIsSH003)
{
    Network net("degenerate", Shape({0}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 1, 4));
    const DiagnosticReport report = validateShapes(net);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.has(diag::kDegenerateShape));
}

TEST(ModelValidator, PooledAwayInputIsShapeError)
{
    // 2x2 pooling over a 4x3x3 input leaves 1x1; a second pooling has
    // nothing left to pool and must be rejected statically.
    Network net("overpooled", Shape({4, 3, 3}));
    net.addLayer(std::make_unique<MaxPool2DLayer>("P1", 2));
    net.addLayer(std::make_unique<MaxPool2DLayer>("P2", 2));
    const DiagnosticReport report = validateShapes(net);
    EXPECT_TRUE(report.hasErrors());
}

TEST(ModelValidator, PlanSizeMismatchIsQP001)
{
    ValidFixture f;
    const QuantizationPlan empty_plan;
    const DiagnosticReport report =
        validateReuseSafety(f.net, empty_plan);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.has(diag::kPlanSizeMismatch));
}

TEST(ModelValidator, NonFiniteQuantizerStepIsQP002)
{
    ValidFixture f;
    // A float range this wide overflows to an infinite step.
    f.plan.layer(0).input =
        LinearQuantizer(16, -3.0e38f, 3.0e38f);
    const DiagnosticReport report =
        validateReuseSafety(f.net, f.plan);
    ASSERT_TRUE(report.hasErrors());
    const Diagnostic *d = report.find(diag::kQuantizerInvalid);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->layer, 0);
}

TEST(ModelValidator, ReuseOnPoolingIsRS001)
{
    Network net("pooled", Shape({2, 8, 8}));
    net.addLayer(std::make_unique<MaxPool2DLayer>("POOL", 2));
    QuantizationPlan plan(net);
    plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
    const DiagnosticReport report = validateReuseSafety(net, plan);
    ASSERT_TRUE(report.hasErrors());
    const Diagnostic *d = report.find(diag::kReuseOnUnsafeLayer);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->layerName, "POOL");
}

TEST(ModelValidator, LstmWithoutRecurrentQuantizerIsRS002)
{
    Rng rng(93);
    Network net("rnn", Shape({6}));
    net.addLayer(std::make_unique<BiLstmLayer>("BLSTM", 6, 5));
    initNetwork(net, rng);
    QuantizationPlan plan(net);
    plan.layer(0).input = LinearQuantizer(16, -4.0f, 4.0f);
    const DiagnosticReport report = validateReuseSafety(net, plan);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.has(diag::kMissingRecurrentQuantizer));
}

TEST(ModelValidator, OverflowProneQuantizerIsRS003)
{
    ValidFixture f;
    // 2^22 clusters over fan-in 6 accumulates past 2^31 in the worst
    // case (6 * 2^22 * 127 ≈ 3.2e9 > INT32_MAX).
    f.plan.layer(0).input = LinearQuantizer(1 << 22, -1.0f, 1.0f);
    const DiagnosticReport report =
        validateReuseSafety(f.net, f.plan);
    EXPECT_FALSE(report.hasErrors());  // a warning, not an error
    const Diagnostic *d = report.find(diag::kDeltaOverflowRisk);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(ModelValidator, PaperScaleClustersDoNotWarn)
{
    ValidFixture f;  // 64 clusters, the paper's upper ablation point
    const DiagnosticReport report =
        validateReuseSafety(f.net, f.plan);
    EXPECT_EQ(report.count(Severity::Warning), 0u);
}

TEST(ModelValidator, FootprintEstimateMatchesWarmFcState)
{
    ValidFixture f;
    const int64_t estimate = estimateReuseStateBytes(f.net, f.plan);
    EXPECT_GT(estimate, 0);

    ReuseEngine engine(f.net, f.plan);
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    engine.execute(state, f.calib[0], trace);
    EXPECT_EQ(estimate, state.memoryBytes());
}

TEST(ModelValidator, FootprintEstimateMatchesWarmConvState)
{
    Rng rng(95);
    Network net("cnn", Shape({2, 10, 10}));
    net.addLayer(
        std::make_unique<Conv2DLayer>("CONV", 2, 3, 3, 1));
    net.addLayer(std::make_unique<ActivationLayer>(
        "RELU", ActivationKind::ReLU));
    initNetwork(net, rng);
    std::vector<Tensor> calib;
    for (int i = 0; i < 6; ++i) {
        Tensor t(Shape({2, 10, 10}));
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        calib.push_back(t);
    }
    const QuantizationPlan plan =
        makePlan(net, profileNetworkRanges(net, calib), 32, {0});

    const int64_t estimate = estimateReuseStateBytes(net, plan);
    EXPECT_GT(estimate, 0);

    ReuseEngine engine(net, plan);
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    engine.execute(state, calib[0], trace);
    EXPECT_EQ(estimate, state.memoryBytes());
}

TEST(ModelValidator, FootprintEstimateMatchesWarmLstmState)
{
    Rng rng(97);
    Network net("rnn", Shape({6}));
    net.addLayer(std::make_unique<BiLstmLayer>("BLSTM", 6, 5));
    initNetwork(net, rng);
    std::vector<Tensor> calib;
    for (int i = 0; i < 8; ++i) {
        Tensor t(Shape({6}));
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        calib.push_back(t);
    }
    const QuantizationPlan plan =
        makePlan(net, profileNetworkRanges(net, calib), 16, {0});
    ASSERT_TRUE(plan.layer(0).recurrent.has_value());

    const int64_t estimate = estimateReuseStateBytes(net, plan);
    EXPECT_GT(estimate, 0);

    ReuseEngine engine(net, plan);
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    engine.executeSequence(state, calib, trace);
    EXPECT_EQ(estimate, state.memoryBytes());
}

TEST(ModelValidator, FootprintOverBudgetIsMF001)
{
    ValidFixture f;
    const int64_t bytes = estimateReuseStateBytes(f.net, f.plan);
    const DiagnosticReport over =
        validateMemoryFootprint(f.net, f.plan, bytes - 1);
    ASSERT_TRUE(over.hasErrors());
    EXPECT_TRUE(over.has(diag::kFootprintOverBudget));

    const DiagnosticReport fits =
        validateMemoryFootprint(f.net, f.plan, bytes);
    EXPECT_FALSE(fits.hasErrors());

    const DiagnosticReport unlimited =
        validateMemoryFootprint(f.net, f.plan, -1);
    EXPECT_FALSE(unlimited.hasErrors());
}

TEST(ModelValidator, MemoryPassSkippedOnShapeErrors)
{
    Network net("broken", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 16));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 32, 4));
    QuantizationPlan plan(net);
    ValidatorOptions options;
    options.memoryBudgetBytes = 1;
    const DiagnosticReport report = validateModel(net, plan, options);
    EXPECT_TRUE(report.has(diag::kShapeMismatch));
    // No MF001: footprints cannot be computed from an invalid graph.
    EXPECT_FALSE(report.has(diag::kFootprintOverBudget));
}

TEST(ModelValidator, EngineConstructionRejectsBrokenModel)
{
    Network net("broken", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 16));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 32, 4));
    QuantizationPlan plan(net);
    EXPECT_DEATH(ReuseEngine(net, plan), "model validation failed");
}

TEST(ModelValidator, EngineConstructionRejectsUnsafePlan)
{
    Network net("pooled", Shape({2, 8, 8}));
    net.addLayer(std::make_unique<MaxPool2DLayer>("POOL", 2));
    QuantizationPlan plan(net);
    plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
    EXPECT_DEATH(ReuseEngine(net, plan), "RS001");
}

TEST(ModelValidator, SessionAdmissionRejectsOversizedFootprint)
{
    ValidFixture f;
    ReuseEngine engine(f.net, f.plan);

    SessionManager::Config cfg;
    cfg.memoryBudgetBytes = 1;  // smaller than any warm session
    SessionManager mgr(cfg);
    SessionManager::Admission admission = mgr.tryCreate(engine, 7);
    EXPECT_EQ(admission.session, nullptr);
    EXPECT_TRUE(admission.report.has(diag::kFootprintOverBudget));
    EXPECT_EQ(mgr.sessionCount(), 0u);
}

TEST(ModelValidator, SessionAdmissionAcceptsWithinBudget)
{
    ValidFixture f;
    ReuseEngine engine(f.net, f.plan);

    SessionManager::Config cfg;
    cfg.memoryBudgetBytes =
        estimateReuseStateBytes(f.net, f.plan) * 2;
    SessionManager mgr(cfg);
    SessionManager::Admission admission = mgr.tryCreate(engine, 7);
    ASSERT_NE(admission.session, nullptr);
    EXPECT_FALSE(admission.report.hasErrors());
    EXPECT_EQ(mgr.sessionCount(), 1u);
}

TEST(ModelValidator, ZooWorkloadsValidateClean)
{
    WorkloadSetupConfig cfg;
    cfg.calibrationFrames = 8;
    for (const std::string &name : modelZooNames()) {
        const Workload w = setupWorkload(name, cfg);
        const DiagnosticReport report =
            validateModel(*w.bundle.network, w.plan);
        EXPECT_FALSE(report.hasErrors()) << name << ":\n"
                                         << report.str();
        EXPECT_EQ(report.count(Severity::Warning), 0u) << name;
    }
}

TEST(ModelValidator, DiagnosticRenderingIncludesIdAndLocus)
{
    DiagnosticReport report;
    report.error(diag::kShapeMismatch, "size mismatch", 3, "FC2");
    report.warning(diag::kDeltaOverflowRisk, "wide range");
    const std::string text = report.str();
    EXPECT_NE(text.find("SH002"), std::string::npos);
    EXPECT_NE(text.find("layer 3"), std::string::npos);
    EXPECT_NE(text.find("FC2"), std::string::npos);
    EXPECT_NE(text.find("RS003"), std::string::npos);
}

} // namespace
} // namespace reuse
