/**
 * @file
 * Concurrency stress tests for the serving runtime (label: stress).
 *
 * Built for the TSan CI job: evictions and corruption re-warms race
 * live frame execution across many sessions, and the outputs must
 * still be bit-identical to a single-stream replay with resets at
 * exactly the recorded cold frames.  Also covers overload shedding
 * under a wedged worker (blocking WorkerStall fault).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "fault/fault_injector.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "obs/exemplar.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"
#include "support/diff_oracle.h"

namespace reuse {
namespace {

struct ServerFixture {
    Rng rng{71};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    ServerFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }

    std::vector<Tensor> stream(size_t frames, uint64_t seed)
    {
        Rng r(seed);
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        r.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += r.gaussian(0.0f, 0.05f);
            s.push_back(x);
        }
        return s;
    }
};

/**
 * Evictions racing execution: an evictor thread repeatedly rips the
 * reuse buffers out from under live sessions while frames stream in.
 * Afterwards every session must match a golden replay that resets at
 * exactly the cold frames the server recorded.
 */
TEST(ServeStress, EvictionsRacingExecutionStayBitExact)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    constexpr size_t kSessions = 4;
    constexpr size_t kFrames = 60;

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    StreamingServer server(engine, cfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("default", s));
        streams.push_back(f.stream(kFrames, 500 + 31 * s));
    }

    std::atomic<bool> done{false};
    std::thread evictor([&] {
        uint64_t round = 0;
        while (!done.load(std::memory_order_acquire)) {
            server.forceEvict(ids[round++ % kSessions]);
            std::this_thread::yield();
        }
    });

    // First half races the evictor thread; the mid-stream barrier
    // then lands one guaranteed eviction per session (a single CPU
    // may drain the whole stream before the evictor is ever
    // scheduled).
    std::vector<std::vector<std::future<Tensor>>> futures(kSessions);
    for (size_t i = 0; i < kFrames / 2; ++i)
        for (size_t s = 0; s < kSessions; ++s)
            futures[s].push_back(
                server.submitFrame(ids[s], streams[s][i]));
    server.drain();
    for (size_t s = 0; s < kSessions; ++s)
        ASSERT_TRUE(server.forceEvict(ids[s]));
    for (size_t i = kFrames / 2; i < kFrames; ++i)
        for (size_t s = 0; s < kSessions; ++s)
            futures[s].push_back(
                server.submitFrame(ids[s], streams[s][i]));
    server.drain();
    done.store(true, std::memory_order_release);
    evictor.join();

    for (size_t s = 0; s < kSessions; ++s) {
        std::vector<Tensor> outputs;
        for (auto &fut : futures[s])
            outputs.push_back(fut.get());
        const auto snap = server.sessionSnapshot(ids[s]);
        EXPECT_EQ(snap.framesCompleted, kFrames);
        const auto report = testing::diffAgainstReplay(
            engine, streams[s], outputs, snap.coldFrames);
        EXPECT_TRUE(report.allBitExact())
            << "session " << s << " diverged at frame "
            << report.firstMismatchFrame << " (cold frames: "
            << snap.coldFrames.size() << ")";
    }
    // At minimum the mid-stream evictions must all be counted; the
    // racing evictor may add more.
    EXPECT_GE(server.metrics().evictions(), kSessions);
}

/**
 * Corruption racing execution: bit-flips land in live sessions' reuse
 * buffers mid-stream; checksum validation must detect each one, re-warm
 * the session instead of crashing, and keep outputs on the golden
 * replay schedule.
 */
TEST(ServeStress, CorruptionRecoveryRacingExecutionStaysBitExact)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    constexpr size_t kSessions = 3;
    constexpr size_t kFrames = 40;

    StreamingServer::Config cfg;
    cfg.workerThreads = 3;
    cfg.validateState = true;
    StreamingServer server(engine, cfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("default", s));
        streams.push_back(f.stream(kFrames, 900 + 17 * s));
    }

    std::atomic<bool> done{false};
    std::thread corruptor([&] {
        uint64_t seed = 1;
        while (!done.load(std::memory_order_acquire)) {
            server.debugCorruptSessionState(
                ids[seed % kSessions], seed);
            ++seed;
            std::this_thread::yield();
        }
    });

    // First half races the corruptor thread; the mid-stream barrier
    // then lands one guaranteed flip per session (a single CPU may
    // drain the whole stream before the corruptor is ever scheduled).
    std::vector<std::vector<std::future<Tensor>>> futures(kSessions);
    for (size_t i = 0; i < kFrames / 2; ++i)
        for (size_t s = 0; s < kSessions; ++s)
            futures[s].push_back(
                server.submitFrame(ids[s], streams[s][i]));
    server.drain();
    for (size_t s = 0; s < kSessions; ++s)
        ASSERT_TRUE(server.debugCorruptSessionState(ids[s], 77 + s));
    for (size_t i = kFrames / 2; i < kFrames; ++i)
        for (size_t s = 0; s < kSessions; ++s)
            futures[s].push_back(
                server.submitFrame(ids[s], streams[s][i]));
    server.drain();
    done.store(true, std::memory_order_release);
    corruptor.join();

    uint64_t recoveries = 0;
    for (size_t s = 0; s < kSessions; ++s) {
        std::vector<Tensor> outputs;
        for (auto &fut : futures[s])
            outputs.push_back(fut.get());
        const auto snap = server.sessionSnapshot(ids[s]);
        recoveries += snap.corruptionRecoveries;
        const auto report = testing::diffAgainstReplay(
            engine, streams[s], outputs, snap.coldFrames);
        EXPECT_TRUE(report.allBitExact())
            << "session " << s << " diverged at frame "
            << report.firstMismatchFrame << " after "
            << snap.corruptionRecoveries << " recoveries";
    }
    // At minimum the mid-stream flips must all be caught; the racing
    // corruptor may add more.
    EXPECT_GE(recoveries, kSessions);
    EXPECT_EQ(server.metrics().corruptionRecoveries(), recoveries);
}

/**
 * Overload shedding: with the single worker wedged on a blocking
 * stall, per-session backlog fills up and trySubmitFrame() must shed
 * with a positive backoff hint instead of blocking; accepted frames
 * all complete once the stall is released.
 */
TEST(ServeStress, OverloadShedsWithBackoffHint)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);

    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    cfg.maxPendingPerSession = 2;
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    const auto frames = f.stream(8, 321);

    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::WorkerStall;
    plan.stallMicros = -1;      // park until disarm
    fault::FaultInjector::global().arm(plan);

    std::vector<std::future<Tensor>> accepted;
    accepted.push_back(server.submitFrame(id, frames[0]));
    while (fault::FaultInjector::global().stalledCount() == 0)
        std::this_thread::yield();

    // Worker is wedged mid-frame; the next maxPendingPerSession
    // submissions queue up, then the session must shed.
    size_t shed = 0;
    for (size_t i = 1; i < frames.size(); ++i) {
        auto outcome = server.trySubmitFrame(id, frames[i]);
        if (outcome.accepted()) {
            accepted.push_back(std::move(outcome.result));
        } else {
            ++shed;
            EXPECT_GT(outcome.retryAfterMicros, 0);
        }
    }
    EXPECT_GE(shed, 1u);
    EXPECT_LE(accepted.size(), 1 + cfg.maxPendingPerSession + 1);
    EXPECT_EQ(server.metrics().framesShed(), shed);

    fault::FaultInjector::global().disarm();
    for (auto &fut : accepted)
        EXPECT_EQ(fut.get().numel(), 4);
    server.drain();
    EXPECT_EQ(server.sessionSnapshot(id).framesCompleted,
              accepted.size());
}

/**
 * Exemplar staging under contention: every worker thread stages spans
 * into its thread-local buffer for every frame, and an impossible
 * low-reuse floor forces every steady-state frame to commit into the
 * shared ring while submissions race from multiple producer threads.
 * TSan-clean execution plus consistent counters is the assertion: the
 * ring can never hold more than committed-minus-dropped exemplars,
 * and every committed exemplar carries a complete staged timeline.
 */
TEST(ServeStress, ExemplarStagingRacesStayConsistent)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    constexpr size_t kSessions = 4;
    constexpr size_t kFrames = 40;

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    cfg.exemplars.enabled = true;
    cfg.exemplars.lowReuseFloor = 1.1;  // commit every steady frame
    cfg.exemplars.ringCapacity = 32;    // force drops under the flood
    StreamingServer server(engine, cfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("default", s));
        streams.push_back(f.stream(kFrames, 1300 + 7 * s));
    }

    // One producer thread per session races the worker pool.
    std::vector<std::thread> producers;
    std::vector<std::vector<std::future<Tensor>>> futures(kSessions);
    for (size_t s = 0; s < kSessions; ++s) {
        producers.emplace_back([&, s] {
            for (size_t i = 0; i < kFrames; ++i)
                futures[s].push_back(
                    server.submitFrame(ids[s], streams[s][i]));
        });
    }
    for (auto &p : producers)
        p.join();
    server.drain();
    for (auto &per_session : futures)
        for (auto &fut : per_session)
            EXPECT_EQ(fut.get().numel(), 4);

    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();
    const std::vector<obs::Exemplar> ring = rec.snapshot();
    const uint64_t committed = rec.committed();
    const uint64_t dropped = rec.dropped();
    // Every session's steady frames (all but the first) committed.
    EXPECT_GE(committed, kSessions * (kFrames - 1));
    EXPECT_EQ(ring.size(),
              std::min<uint64_t>(committed - dropped, 32));
    EXPECT_EQ(rec.stagingOverflows(), 0u);
    for (const obs::Exemplar &ex : ring) {
        EXPECT_NE(ex.causes & obs::kExemplarLowReuse, 0u);
        EXPECT_FALSE(ex.truncated);
        size_t frame_execs = 0;
        for (const obs::ExemplarSpan &sp : ex.spans)
            frame_execs += sp.kind == obs::SpanKind::FrameExec;
        EXPECT_EQ(frame_execs, 1u) << "session " << ex.session
                                   << " frame " << ex.frame;
    }

    obs::ExemplarRecorder::Policy off;
    off.armed = false;
    rec.configure(off);
    rec.clear();
}

} // namespace
} // namespace reuse
