/** @file Unit tests for the session registry and memory governor. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"

namespace reuse {
namespace {

struct ServeFixture {
    Rng rng{81};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    ServeFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }

    std::vector<Tensor> stream(size_t frames, float sigma = 0.05f)
    {
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }

    /** Reuse-buffer bytes of one warmed-up session of this model. */
    int64_t warmStateBytes(const ReuseEngine &engine)
    {
        ReuseState s = engine.makeState();
        ExecutionTrace t;
        engine.execute(s, calib[0], t);
        return s.memoryBytes();
    }
};

TEST(SessionManager, CreateFindRemove)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    SessionManager mgr;

    auto a = mgr.create(engine, 1);
    auto b = mgr.create(engine, 2);
    EXPECT_NE(a->id(), b->id());
    EXPECT_EQ(mgr.sessionCount(), 2u);
    EXPECT_EQ(mgr.find(a->id()), a);
    EXPECT_EQ(mgr.find(9999), nullptr);

    mgr.remove(a->id());
    EXPECT_EQ(mgr.sessionCount(), 1u);
    EXPECT_EQ(mgr.find(a->id()), nullptr);
    // Removing twice is harmless.
    mgr.remove(a->id());
    EXPECT_EQ(mgr.sessionCount(), 1u);
}

TEST(SessionManager, ColdSessionChargesNothing)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    SessionManager mgr;
    auto s = mgr.create(engine, 1);
    mgr.noteExecution(*s);
    EXPECT_EQ(mgr.chargedBytes(), 0);
    EXPECT_EQ(mgr.evictionCount(), 0u);
    EXPECT_FALSE(s->snapshot().warm);
}

TEST(SessionManager, ForceEvictUnknownIdReturnsFalse)
{
    SessionManager mgr;
    EXPECT_FALSE(mgr.forceEvict(123));
}

TEST(SessionManager, ExecutionChargesWarmBytes)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    const int64_t per_session = f.warmStateBytes(engine);
    ASSERT_GT(per_session, 0);

    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    for (const Tensor &in : f.stream(3))
        server.submitFrame(id, in).get();

    EXPECT_EQ(server.sessionManager().chargedBytes(), per_session);
    const auto snap = server.sessionSnapshot(id);
    EXPECT_TRUE(snap.warm);
    EXPECT_EQ(snap.stateBytes, per_session);
    EXPECT_EQ(snap.framesCompleted, 3u);
}

TEST(SessionManager, ForceEvictReleasesChargeAndSessionRewarms)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    const auto frames = f.stream(6);
    for (size_t i = 0; i < 3; ++i)
        server.submitFrame(id, frames[i]).get();

    ASSERT_TRUE(server.forceEvict(id));
    auto snap = server.sessionSnapshot(id);
    EXPECT_FALSE(snap.warm);
    EXPECT_EQ(snap.evictions, 1u);
    EXPECT_EQ(server.sessionManager().chargedBytes(), 0);
    EXPECT_EQ(server.sessionManager().evictionCount(), 1u);

    // Next frame runs cold and re-warms the buffers.
    server.submitFrame(id, frames[3]).get();
    snap = server.sessionSnapshot(id);
    EXPECT_TRUE(snap.warm);
    ASSERT_EQ(snap.coldFrames.size(), 1u);
    EXPECT_EQ(snap.coldFrames[0], 3u);
    EXPECT_GT(server.sessionManager().chargedBytes(), 0);
}

TEST(SessionManager, BudgetEvictsLeastRecentlyUsedSession)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    const int64_t per_session = f.warmStateBytes(engine);

    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    // Room for two warm sessions (plus slack), not three.
    cfg.memoryBudgetBytes = per_session * 5 / 2;
    StreamingServer server(engine, cfg);

    const SessionId s0 = server.openSession("default", 0);
    const SessionId s1 = server.openSession("default", 1);
    const SessionId s2 = server.openSession("default", 2);
    const auto frames = f.stream(4);

    // Warm the sessions in order; the third exceeds the budget and
    // must evict the least recently used (s0).
    server.submitFrame(s0, frames[0]).get();
    server.submitFrame(s1, frames[1]).get();
    server.submitFrame(s2, frames[2]).get();

    EXPECT_EQ(server.sessionManager().evictionCount(), 1u);
    EXPECT_LE(server.sessionManager().chargedBytes(),
              cfg.memoryBudgetBytes);
    EXPECT_FALSE(server.sessionSnapshot(s0).warm);
    EXPECT_TRUE(server.sessionSnapshot(s1).warm);
    EXPECT_TRUE(server.sessionSnapshot(s2).warm);

    // Re-warming s0 now pushes out s1 (the new LRU).
    server.submitFrame(s0, frames[3]).get();
    EXPECT_EQ(server.sessionManager().evictionCount(), 2u);
    EXPECT_TRUE(server.sessionSnapshot(s0).warm);
    EXPECT_FALSE(server.sessionSnapshot(s1).warm);
    EXPECT_TRUE(server.sessionSnapshot(s2).warm);
}

TEST(SessionManager, OversizedSessionIsRejectedAtAdmission)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    cfg.memoryBudgetBytes = 1;  // smaller than any warm session
    StreamingServer server(engine, cfg);
    // A session whose footprint alone exceeds the budget would only
    // thrash (admitted cold, evicted before ever reusing), so
    // admission rejects it up front instead of tolerating it.
    const SessionId id = server.openSession();
    EXPECT_EQ(id, kInvalidSessionId);
    EXPECT_EQ(server.sessionManager().sessionCount(), 0u);
    EXPECT_EQ(server.sessionManager().chargedBytes(), 0);
}

TEST(SessionManager, AdmissionBudgetCountsFootprintNotSessions)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    const int64_t per_session = f.warmStateBytes(engine);

    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    // One warm session fits, so admission accepts any number of
    // sessions (the LRU governor handles aggregate pressure).
    cfg.memoryBudgetBytes = per_session;
    StreamingServer server(engine, cfg);
    const SessionId a = server.openSession("default", 0);
    const SessionId b = server.openSession("default", 1);
    EXPECT_NE(a, kInvalidSessionId);
    EXPECT_NE(b, kInvalidSessionId);
    EXPECT_EQ(server.sessionManager().sessionCount(), 2u);
}

TEST(SessionManager, UnlimitedBudgetNeverEvicts)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    StreamingServer server(engine, cfg);
    std::vector<SessionId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(server.openSession("default", i));
    for (int round = 0; round < 3; ++round)
        for (SessionId id : ids)
            server.submitFrame(id, f.calib[round]);
    server.drain();
    EXPECT_EQ(server.sessionManager().evictionCount(), 0u);
    for (SessionId id : ids)
        EXPECT_TRUE(server.sessionSnapshot(id).warm);
}

TEST(SessionManager, CloseReleasesCharge)
{
    ServeFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    StreamingServer server(engine, cfg);
    const SessionId a = server.openSession();
    const SessionId b = server.openSession();
    server.submitFrame(a, f.calib[0]).get();
    server.submitFrame(b, f.calib[1]).get();
    const int64_t both = server.sessionManager().chargedBytes();
    ASSERT_GT(both, 0);

    server.closeSession(a);
    EXPECT_EQ(server.sessionManager().sessionCount(), 1u);
    EXPECT_EQ(server.sessionManager().chargedBytes(), both / 2);
}

} // namespace
} // namespace reuse
