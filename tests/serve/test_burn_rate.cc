/**
 * @file
 * SloBurnTracker unit tests: multi-window burn-rate arithmetic over
 * caller-supplied timestamps, window expiry as the bucket ring wraps,
 * and cumulative budget consumption.  All times are explicit
 * microseconds, so every expectation is exact.
 */

#include <gtest/gtest.h>

#include "serve/burn_rate.h"

namespace reuse {
namespace {

/** Small windows keep the arithmetic readable: fast 60 ms, slow
 *  600 ms, bucket width 10 ms. */
SloBurnTracker::Config
smallWindows()
{
    SloBurnTracker::Config cfg;
    cfg.fastWindowMicros = 60'000;
    cfg.slowWindowMicros = 600'000;
    return cfg;
}

TEST(SloBurnTracker, EmptyTrackerReportsZero)
{
    SloBurnTracker t(smallWindows());
    EXPECT_EQ(t.burnRate(SloClass::Interactive, BurnWindow::Fast, 0),
              0.0);
    EXPECT_EQ(t.burnRate(SloClass::Interactive, BurnWindow::Slow, 0),
              0.0);
    EXPECT_EQ(t.missFraction(SloClass::Interactive, BurnWindow::Fast,
                             0),
              0.0);
    EXPECT_EQ(t.budgetConsumed(SloClass::Interactive), 0.0);
    EXPECT_EQ(t.totalFrames(SloClass::Interactive), 0u);
}

TEST(SloBurnTracker, BurnIsMissFractionOverBudget)
{
    SloBurnTracker t(smallWindows());
    // 100 interactive frames at t=1ms, 2 bad: miss fraction 2% over
    // a 1% budget -> burn 2.0 in both windows.
    for (int i = 0; i < 100; ++i)
        t.record(SloClass::Interactive, i < 2, 1'000);
    EXPECT_DOUBLE_EQ(t.missFraction(SloClass::Interactive,
                                    BurnWindow::Fast, 1'000),
                     0.02);
    EXPECT_DOUBLE_EQ(
        t.burnRate(SloClass::Interactive, BurnWindow::Fast, 1'000),
        2.0);
    EXPECT_DOUBLE_EQ(
        t.burnRate(SloClass::Interactive, BurnWindow::Slow, 1'000),
        2.0);
    EXPECT_EQ(t.totalFrames(SloClass::Interactive), 100u);
    EXPECT_EQ(t.badFrames(SloClass::Interactive), 2u);
}

TEST(SloBurnTracker, ClassesAreIndependentWithOwnBudgets)
{
    SloBurnTracker t(smallWindows());
    // 5% misses: interactive (1% budget) burns at 5, batch (5%
    // budget) burns exactly at the sustainable pace.
    for (int i = 0; i < 100; ++i) {
        t.record(SloClass::Interactive, i < 5, 1'000);
        t.record(SloClass::Batch, i < 5, 1'000);
    }
    EXPECT_DOUBLE_EQ(
        t.burnRate(SloClass::Interactive, BurnWindow::Fast, 1'000),
        5.0);
    EXPECT_DOUBLE_EQ(
        t.burnRate(SloClass::Batch, BurnWindow::Fast, 1'000), 1.0);
    EXPECT_EQ(t.totalFrames(SloClass::Standard), 0u);
}

TEST(SloBurnTracker, FastWindowForgetsWhatSlowWindowRemembers)
{
    SloBurnTracker t(smallWindows());
    // A burst of misses at t=5ms...
    for (int i = 0; i < 10; ++i)
        t.record(SloClass::Interactive, true, 5'000);
    // ...then clean traffic at t=200ms.  The fast 60 ms window has
    // aged the burst out; the slow 600 ms window still sees it.
    for (int i = 0; i < 10; ++i)
        t.record(SloClass::Interactive, false, 200'000);

    EXPECT_DOUBLE_EQ(t.missFraction(SloClass::Interactive,
                                    BurnWindow::Fast, 200'000),
                     0.0);
    EXPECT_DOUBLE_EQ(t.missFraction(SloClass::Interactive,
                                    BurnWindow::Slow, 200'000),
                     0.5);
}

TEST(SloBurnTracker, SlowWindowExpiresAfterRingWraps)
{
    SloBurnTracker t(smallWindows());
    for (int i = 0; i < 4; ++i)
        t.record(SloClass::Interactive, true, 1'000);
    // Two slow windows later the buckets have been reclaimed: the
    // windowed views are empty, the cumulative counters are not.
    const int64_t later = 1'200'000;
    t.record(SloClass::Interactive, false, later);
    EXPECT_DOUBLE_EQ(t.missFraction(SloClass::Interactive,
                                    BurnWindow::Slow, later),
                     0.0);
    EXPECT_EQ(t.totalFrames(SloClass::Interactive), 5u);
    EXPECT_EQ(t.badFrames(SloClass::Interactive), 4u);
}

TEST(SloBurnTracker, BudgetConsumedIsCumulative)
{
    SloBurnTracker t(smallWindows());
    // 50 frames, 1 bad, 1% budget: 2% miss over budget -> 2.0.
    for (int i = 0; i < 50; ++i)
        t.record(SloClass::Standard, i == 0, 1'000 + i);
    EXPECT_DOUBLE_EQ(t.budgetConsumed(SloClass::Standard), 2.0);
    // 50 more clean frames halve the cumulative miss fraction.
    for (int i = 0; i < 50; ++i)
        t.record(SloClass::Standard, false, 2'000 + i);
    EXPECT_DOUBLE_EQ(t.budgetConsumed(SloClass::Standard), 1.0);
}

TEST(SloBurnTracker, ResetZeroesWindowsAndCumulatives)
{
    SloBurnTracker t(smallWindows());
    for (int i = 0; i < 10; ++i)
        t.record(SloClass::Interactive, true, 1'000);
    t.reset();
    EXPECT_EQ(t.totalFrames(SloClass::Interactive), 0u);
    EXPECT_EQ(t.badFrames(SloClass::Interactive), 0u);
    EXPECT_DOUBLE_EQ(
        t.burnRate(SloClass::Interactive, BurnWindow::Fast, 1'000),
        0.0);
    EXPECT_DOUBLE_EQ(t.budgetConsumed(SloClass::Interactive), 0.0);
    // The tracker keeps working after reset.
    t.record(SloClass::Interactive, false, 2'000);
    EXPECT_EQ(t.totalFrames(SloClass::Interactive), 1u);
}

} // namespace
} // namespace reuse
