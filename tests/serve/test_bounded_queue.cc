/** @file Unit tests for the bounded MPMC admission queue. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/bounded_queue.h"

namespace reuse {
namespace {

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 5u);
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushFailsWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_TRUE(q.tryPush(3));
}

TEST(BoundedQueue, ZeroCapacityClampsToOne)
{
    BoundedQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.tryPush(7));
    EXPECT_FALSE(q.tryPush(8));
}

TEST(BoundedQueue, CloseDrainsThenPopReturnsFalse)
{
    BoundedQueue<int> q(8);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_TRUE(q.closed());
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, PushAfterCloseIsRejected)
{
    BoundedQueue<int> q(8);
    q.close();
    EXPECT_FALSE(q.push(1));
    EXPECT_FALSE(q.tryPush(1));
}

TEST(BoundedQueue, FullPushBlocksUntilPop)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(2));
        pushed.store(true);
    });
    // The producer must be blocked on the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, CloseReleasesBlockedProducer)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing)
{
    const int kProducers = 4;
    const int kConsumers = 4;
    const int kPerProducer = 2000;
    BoundedQueue<int> q(16);

    std::atomic<long long> consumed_sum{0};
    std::atomic<int> consumed_count{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            int v = 0;
            while (q.pop(v)) {
                consumed_sum.fetch_add(v);
                consumed_count.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                EXPECT_TRUE(q.push(p * kPerProducer + i));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : threads)
        t.join();

    const long long n = kProducers * kPerProducer;
    EXPECT_EQ(consumed_count.load(), n);
    EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

} // namespace
} // namespace reuse
