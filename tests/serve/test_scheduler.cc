/**
 * @file
 * Deterministic scheduler tests: EDF ordering, deadline-based
 * admission, SLO-class priority, work stealing, migration and
 * deadline-miss accounting — all driven by a virtual clock
 * (tests/support/virtual_clock.h) and the server's manual-dispatch
 * pump, with zero wall-clock sleeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"
#include "serve/placement.h"
#include "serve/shard_scheduler.h"
#include "serve/streaming_server.h"
#include "support/virtual_clock.h"

namespace reuse {
namespace {

using testing::VirtualClock;
using IntQueues = EdfShardQueues<int>;

IntQueues::Config
queueConfig(size_t shards, size_t capacity, int64_t service_us)
{
    IntQueues::Config cfg;
    cfg.shards = shards;
    cfg.capacityPerShard = capacity;
    cfg.workersPerShard = 1;
    cfg.initialServiceEstimateMicros = service_us;
    return cfg;
}

// ---------------------------------------------------------------------
// EDF queue core
// ---------------------------------------------------------------------

TEST(EdfQueue, PopsInDeadlineOrder)
{
    IntQueues q(queueConfig(1, 0, 0));
    q.push(0, 300, 0, 3);
    q.push(0, 100, 0, 1);
    q.push(0, 200, 0, 2);
    IntQueues::Entry e;
    ASSERT_TRUE(q.tryPop(0, e));
    EXPECT_EQ(e.payload, 1);
    ASSERT_TRUE(q.tryPop(0, e));
    EXPECT_EQ(e.payload, 2);
    ASSERT_TRUE(q.tryPop(0, e));
    EXPECT_EQ(e.payload, 3);
    EXPECT_FALSE(q.tryPop(0, e));
}

TEST(EdfQueue, FifoTiebreakAmongEqualDeadlines)
{
    IntQueues q(queueConfig(1, 0, 0));
    for (int i = 0; i < 5; ++i)
        q.push(0, 1000, 0, i);
    IntQueues::Entry e;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.tryPop(0, e));
        EXPECT_EQ(e.payload, i);
    }
}

/**
 * Property: for any seeded random arrival pattern, pops come out
 * sorted by (deadline, arrival order).
 */
TEST(EdfQueue, PropertyRandomArrivalsPopInEdfOrder)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        IntQueues q(queueConfig(1, 0, 0));
        const int n = 64;
        std::vector<std::pair<int64_t, int>> pushed;
        for (int i = 0; i < n; ++i) {
            // Narrow deadline range on purpose: collisions exercise
            // the FIFO tiebreak, not just the heap order.
            const int64_t d = 1000 + rng.uniformInt(0, 15) * 100;
            q.push(0, d, 0, i);
            pushed.emplace_back(d, i);
        }
        std::stable_sort(pushed.begin(), pushed.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        IntQueues::Entry e;
        for (int i = 0; i < n; ++i) {
            ASSERT_TRUE(q.tryPop(0, e));
            EXPECT_EQ(e.deadlineMicros, pushed[i].first)
                << "seed " << seed << " pop " << i;
            EXPECT_EQ(e.payload, pushed[i].second)
                << "seed " << seed << " pop " << i;
        }
    }
}

TEST(EdfQueue, CapacityShedSuggestsOneServiceSlot)
{
    IntQueues q(queueConfig(1, /*capacity=*/2, /*service=*/4000));
    EXPECT_TRUE(q.admitFrame(0, 0, 1'000'000).admitted);
    EXPECT_TRUE(q.admitFrame(0, 0, 1'000'000).admitted);
    const auto out = q.admitFrame(0, 0, 1'000'000);
    EXPECT_FALSE(out.admitted);
    EXPECT_EQ(out.retryAfterMicros, 4000);
}

TEST(EdfQueue, InfeasibleDeadlineShedsWithDeadlineDerivedHint)
{
    // One worker, 5 ms service estimate, two 10 ms-deadline frames
    // admitted: EDF queues an equal-or-later deadline behind them
    // (upper_bound), so a third such frame completes at +15 ms.
    IntQueues q(queueConfig(1, 0, 5000));
    EXPECT_TRUE(q.admitFrame(0, 0, 10'000).admitted);
    EXPECT_TRUE(q.admitFrame(0, 0, 10'000).admitted);
    // 12 ms budget: provably 3 ms late -> shed.  The hint is the
    // shortfall floored at one service slot (retrying sooner than a
    // slot frees cannot succeed), so 5 ms here.
    const auto shed = q.admitFrame(0, 0, 12'000);
    EXPECT_FALSE(shed.admitted);
    EXPECT_EQ(shed.retryAfterMicros, 5000);
    // Exactly-feasible boundary: completion == deadline is admitted.
    EXPECT_TRUE(q.admitFrame(0, 0, 15'000).admitted);
}

TEST(EdfQueue, DisplacementProtectsAdmittedFrames)
{
    IntQueues q(queueConfig(1, 0, 5000));
    // Admitted frame finishing right at its 5 ms deadline.
    EXPECT_TRUE(q.admitFrame(0, 0, 5000).admitted);
    // An earlier-deadline frame would displace it to 10 ms > 5 ms:
    // the newcomer is shed even though it could itself finish.
    const auto shed = q.admitFrame(0, 0, 4000);
    EXPECT_FALSE(shed.admitted);
    EXPECT_EQ(shed.retryAfterMicros, 5000);
    // A later-deadline frame queues behind it and is admitted.
    EXPECT_TRUE(q.admitFrame(0, 0, 10'000).admitted);
}

TEST(EdfQueue, CompleteFrameFeedsServiceEwma)
{
    IntQueues q(queueConfig(1, 0, 0));
    EXPECT_EQ(q.serviceEstimateMicros(0), 0);
    // No estimate yet: admission is capacity-only, everything fits.
    EXPECT_TRUE(q.admitFrame(0, 0, 1).admitted);
    q.completeFrame(0, 1, 8000);
    EXPECT_EQ(q.serviceEstimateMicros(0), 8000);
    q.completeFrame(0, 0, 4000);    // tolerated: unknown deadline
    EXPECT_EQ(q.serviceEstimateMicros(0), 7000);    // (3*8+4)/4
}

TEST(EdfQueue, MoveFramesMovesAdmissionAccounting)
{
    IntQueues q(queueConfig(2, 0, 0));
    q.admitFrame(0, 0, 100);
    q.admitFrame(0, 0, 200);
    EXPECT_EQ(q.pendingFrames(0), 2u);
    EXPECT_EQ(q.pendingFrames(1), 0u);
    q.moveFrames(0, 1, {100, 200});
    EXPECT_EQ(q.pendingFrames(0), 0u);
    EXPECT_EQ(q.pendingFrames(1), 2u);
}

TEST(EdfQueue, StealTakesEarliestOfDeepestShard)
{
    IntQueues q(queueConfig(3, 0, 0));
    q.push(1, 500, 0, 15);
    q.push(2, 100, 0, 21);
    q.push(2, 400, 0, 22);
    IntQueues::Entry e;
    size_t victim = 99;
    ASSERT_TRUE(q.trySteal(0, e, victim));
    EXPECT_EQ(victim, 2u);      // deepest shard
    EXPECT_EQ(e.payload, 21);   // its earliest deadline
    // Nothing to steal when every other shard is empty.
    IntQueues empty(queueConfig(2, 0, 0));
    EXPECT_FALSE(empty.trySteal(0, e, victim));
}

// ---------------------------------------------------------------------
// Similarity-aware placement
// ---------------------------------------------------------------------

TEST(Placer, PlanCoResidencyWins)
{
    ShardPlacer placer(4);
    const size_t first = placer.place(/*plan=*/7, 0);
    // Same plan lands with its sibling despite the load tiebreak.
    EXPECT_EQ(placer.place(7, 0), first);
    EXPECT_EQ(placer.sessionCount(first), 2u);
    // A different plan spreads to an empty shard.
    EXPECT_NE(placer.place(8, 0), first);
}

TEST(Placer, SignatureSimilaritySteersPlacement)
{
    ShardPlacer placer(2);
    const uint64_t sig = 0xF0F0F0F0F0F0F0F1ull;
    placer.noteSignature(1, sig);
    // No plan co-residency anywhere: the similar-signature shard
    // wins over the empty-but-signatureless shard 0.
    EXPECT_EQ(placer.place(/*plan=*/1, sig), 1u);
    // A maximally dissimilar hint loses the signature points and
    // falls back to the less loaded shard.
    EXPECT_EQ(placer.place(/*plan=*/2, ~sig), 0u);
}

TEST(Placer, SketchHammingTracksInputDistance)
{
    Tensor a(Shape({64}));
    Tensor b(Shape({64}));
    for (int64_t i = 0; i < 64; ++i) {
        a[i] = (i % 2 == 0) ? 1.0f : -1.0f;
        b[i] = a[i];
    }
    const uint64_t sa = ShardPlacer::inputSketch(a);
    EXPECT_EQ(ShardPlacer::hammingDistance(
                  sa, ShardPlacer::inputSketch(b)),
              0);
    // Flip a few elements; the sketch moves by at most that many bits
    // and stays close.
    b[2] = -1.0f;
    b[10] = -1.0f;
    const int dist = ShardPlacer::hammingDistance(
        sa, ShardPlacer::inputSketch(b));
    EXPECT_GE(dist, 1);
    EXPECT_LE(dist, 2);
    EXPECT_NE(sa, 0u);  // valid sketches never collide with "none"
}

// ---------------------------------------------------------------------
// Server-level scheduling (manual dispatch + virtual clock)
// ---------------------------------------------------------------------

struct SchedFixture {
    Rng rng{91};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    SchedFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }

    Tensor frame(uint64_t seed)
    {
        Rng r(seed);
        Tensor t(Shape({6}));
        r.fillGaussian(t.data(), 0.0f, 1.0f);
        return t;
    }

    StreamingServer::Config manualConfig(VirtualClock &clock,
                                         size_t shards = 1)
    {
        StreamingServer::Config cfg;
        cfg.manualDispatch = true;
        cfg.workerThreads = shards;  // 1 worker/shard feasibility
        cfg.shards = shards;
        cfg.clock = &clock;
        return cfg;
    }
};

bool
ready(const std::future<Tensor> &f)
{
    return f.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

TEST(Scheduler, InteractiveRunsBeforeEarlierSubmittedBatch)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.manualConfig(clock));

    const SessionId batch =
        server.openSession("default", 1, SloClass::Batch);
    const SessionId inter =
        server.openSession("default", 2, SloClass::Interactive);

    // Batch frame submitted FIRST; FIFO would run it first.  EDF
    // must run the interactive frame (10 ms budget vs 1 s) first.
    auto batch_fut = server.submitFrame(batch, f.frame(10));
    auto inter_fut = server.submitFrame(inter, f.frame(11));

    ASSERT_TRUE(server.runOne(0));
    EXPECT_TRUE(ready(inter_fut));
    EXPECT_FALSE(ready(batch_fut));
    ASSERT_TRUE(server.runOne(0));
    EXPECT_TRUE(ready(batch_fut));
    EXPECT_FALSE(server.runOne(0));
}

/**
 * Regression for blind overload shedding: the old runtime shed on
 * queue occupancy alone, so under backlog a deadline-insensitive
 * frame was rejected exactly like an urgent one.  With deadline-aware
 * admission, a short-deadline frame that provably cannot finish is
 * shed (with a hint derived from how late it would land) while a
 * long-deadline frame submitted right after it is admitted behind
 * the same backlog.
 */
TEST(Scheduler, ShortDeadlineShedLongDeadlineAdmittedBehindIt)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg = f.manualConfig(clock);
    cfg.initialServiceEstimateMicros = 5000;    // 5 ms/frame, 1 worker
    StreamingServer server(engine, cfg);

    const SessionId inter =
        server.openSession("default", 1, SloClass::Interactive);
    const SessionId batch =
        server.openSession("default", 2, SloClass::Batch);

    // Backlog: three force-admitted interactive frames (10 ms
    // deadlines) occupy 15 ms of the shard; an equal-deadline
    // newcomer queues behind all of them under EDF.
    std::vector<std::future<Tensor>> backlog;
    for (int i = 0; i < 3; ++i)
        backlog.push_back(server.submitFrame(inter, f.frame(20 + i)));

    // A fourth interactive frame would finish at +20 ms against a
    // 10 ms deadline: shed, and the hint is exactly the 10 ms
    // shortfall.
    auto shed = server.trySubmitFrame(inter, f.frame(30));
    EXPECT_FALSE(shed.accepted());
    EXPECT_EQ(shed.retryAfterMicros, 10'000);
    EXPECT_EQ(server.metrics().classShed(SloClass::Interactive), 1u);

    // A batch frame queued BEHIND the same backlog is admitted: its
    // 1 s budget absorbs the wait.  Blind occupancy shedding would
    // have treated both alike.
    auto admitted = server.trySubmitFrame(batch, f.frame(31));
    EXPECT_TRUE(admitted.accepted());
    EXPECT_EQ(server.metrics().classShed(SloClass::Batch), 0u);

    while (server.runOne(0)) {
    }
    EXPECT_TRUE(ready(admitted.result));
}

TEST(Scheduler, StealOnlyWhenHomeShardIdle)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.manualConfig(clock, /*shards=*/2));

    const SessionId home =
        server.openSession("default", 1, SloClass::Standard);
    const SessionId remote =
        server.openSession("default", 2, SloClass::Standard);
    // Same model => the placer co-locates; force them apart.
    ASSERT_TRUE(server.migrateSession(remote, 1));

    // The remote frame has the EARLIER deadline; a non-idle thief
    // must still prefer its own shard's work.
    auto remote_fut = server.submitFrame(remote, f.frame(2));
    clock.advance(1000);
    auto home_fut = server.submitFrame(home, f.frame(1));

    ASSERT_TRUE(server.runOne(0, /*allow_steal=*/true));
    EXPECT_TRUE(ready(home_fut));
    EXPECT_FALSE(ready(remote_fut));
    EXPECT_EQ(server.metrics().steals(), 0u);

    // Home idle and stealing disabled: nothing runs.
    EXPECT_FALSE(server.runOne(0, /*allow_steal=*/false));
    EXPECT_FALSE(ready(remote_fut));

    // Home idle and stealing enabled: the remote frame is taken.
    ASSERT_TRUE(server.runOne(0, /*allow_steal=*/true));
    EXPECT_TRUE(ready(remote_fut));
    EXPECT_EQ(server.metrics().steals(), 1u);
}

TEST(Scheduler, MigrationStalesOldEntryAndMovesBacklog)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.manualConfig(clock, /*shards=*/2));

    const SessionId id =
        server.openSession("default", 1, SloClass::Standard);
    auto fut0 = server.submitFrame(id, f.frame(1));
    auto fut1 = server.submitFrame(id, f.frame(2));
    EXPECT_EQ(server.sessionSnapshot(id).shard, 0u);
    EXPECT_EQ(server.shardPendingFrames(0), 2u);

    ASSERT_TRUE(server.migrateSession(id, 1));
    EXPECT_EQ(server.sessionSnapshot(id).shard, 1u);
    EXPECT_EQ(server.metrics().migrations(), 1u);
    // Admission accounting followed the session.
    EXPECT_EQ(server.shardPendingFrames(0), 0u);
    EXPECT_EQ(server.shardPendingFrames(1), 2u);

    // The old shard's entry is stale: pumping shard 0 does no work
    // (and must not double-run the session).
    EXPECT_FALSE(server.runOne(0));
    EXPECT_FALSE(ready(fut0));

    // The new shard runs both frames in order.
    ASSERT_TRUE(server.runOne(1));
    EXPECT_TRUE(ready(fut0));
    ASSERT_TRUE(server.runOne(1));
    EXPECT_TRUE(ready(fut1));
    EXPECT_FALSE(server.runOne(1));
}

TEST(Scheduler, DeadlineMissAccountingPerClass)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.manualConfig(clock));

    const SessionId inter =
        server.openSession("default", 1, SloClass::Interactive);
    auto on_time = server.submitFrame(inter, f.frame(1));
    ASSERT_TRUE(server.runOne(0));  // completes at t=0: on time
    EXPECT_TRUE(ready(on_time));
    EXPECT_EQ(server.metrics().classDeadlineMisses(
                  SloClass::Interactive),
              0u);

    auto late = server.submitFrame(inter, f.frame(2));
    clock.advance(50'000);          // sit in queue past the deadline
    ASSERT_TRUE(server.runOne(0));
    EXPECT_TRUE(ready(late));
    EXPECT_EQ(server.metrics().classDeadlineMisses(
                  SloClass::Interactive),
              1u);
    EXPECT_EQ(server.metrics().deadlineMisses(), 1u);
    EXPECT_EQ(server.sessionSnapshot(inter).deadlineMisses, 1u);
    // The miss shows in the class histogram (~50 ms), not Standard's.
    EXPECT_GE(server.metrics()
                  .latency(SloClass::Interactive)
                  .percentile(0.99),
              50'000.0);
    EXPECT_EQ(server.metrics().classCompleted(SloClass::Standard), 0u);
}

TEST(Scheduler, EvictionBetweenPumpsStaysDeterministic)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.manualConfig(clock));

    const SessionId id =
        server.openSession("default", 1, SloClass::Standard);
    std::vector<Tensor> frames;
    for (int i = 0; i < 6; ++i)
        frames.push_back(f.frame(100 + i));

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 3; ++i)
        futs.push_back(server.submitFrame(id, frames[i]));
    while (server.runOne(0)) {
    }
    ASSERT_TRUE(server.forceEvict(id));
    for (int i = 3; i < 6; ++i)
        futs.push_back(server.submitFrame(id, frames[i]));
    while (server.runOne(0)) {
    }

    const Session::Snapshot snap = server.sessionSnapshot(id);
    EXPECT_EQ(snap.framesCompleted, 6u);
    EXPECT_EQ(snap.evictions, 1u);
    ASSERT_EQ(snap.coldFrames.size(), 1u);
    EXPECT_EQ(snap.coldFrames[0], 3u);

    // Bit-identical to a dedicated engine reset at exactly frame 3.
    ReuseState ref_state = engine.makeState();
    ExecutionTrace trace;
    for (size_t i = 0; i < frames.size(); ++i) {
        if (i == 3)
            ref_state.reset();
        const Tensor want =
            engine.execute(ref_state, frames[i], trace);
        const Tensor got = futs[i].get();
        ASSERT_EQ(got.numel(), want.numel());
        for (int64_t j = 0; j < want.numel(); ++j)
            EXPECT_FLOAT_EQ(got[j], want[j]) << "frame " << i;
    }
}

/**
 * Property: under any seeded random interleaving of submissions and
 * clock advances across SLO classes, pumping one shard completes
 * frames in non-decreasing deadline order.
 */
TEST(Scheduler, PropertyMixedClassesCompleteInEdfOrder)
{
    SchedFixture f;
    ReuseEngine engine(f.net, f.plan);
    const SloClass kClasses[] = {SloClass::Interactive,
                                 SloClass::Standard, SloClass::Batch};
    const SloPolicy policy;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed);
        VirtualClock clock;
        StreamingServer server(engine, f.manualConfig(clock));

        // One single-frame session per submission keeps the mapping
        // future -> deadline exact (multi-frame sessions serialize
        // internally, which is a different invariant).
        const int n = 12;
        std::vector<std::future<Tensor>> futs;
        std::vector<int64_t> deadlines;
        for (int i = 0; i < n; ++i) {
            const SloClass slo = kClasses[rng.uniformInt(0, 2)];
            const SessionId id = server.openSession(
                "default", 500 + static_cast<uint64_t>(i), slo);
            const int64_t now = clock.nowMicros();
            futs.push_back(
                server.submitFrame(id, f.frame(700 + i)));
            deadlines.push_back(now + policy.budget(slo));
            clock.advance(rng.uniformInt(0, 3) * 500);
        }

        int64_t last = -1;
        std::vector<bool> done(n, false);
        while (server.runOne(0)) {
            int completed = -1;
            for (int i = 0; i < n; ++i) {
                if (!done[i] && ready(futs[i])) {
                    ASSERT_EQ(completed, -1)
                        << "one pump ran two frames";
                    completed = i;
                }
            }
            ASSERT_NE(completed, -1);
            done[completed] = true;
            EXPECT_GE(deadlines[completed], last)
                << "seed " << seed << ": EDF order violated";
            last = deadlines[completed];
        }
        EXPECT_TRUE(std::all_of(done.begin(), done.end(),
                                [](bool b) { return b; }));
    }
}

} // namespace
} // namespace reuse
