/**
 * @file
 * Integration tests for the multi-stream serving runtime: interleaved
 * sessions must be bit-identical to independent single-stream runs,
 * including across evictions, re-warming and refresh boundaries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"

namespace reuse {
namespace {

struct ServerFixture {
    Rng rng{91};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    ServerFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }

    /** A fresh correlated stream; distinct `seed`s decorrelate. */
    std::vector<Tensor> stream(size_t frames, uint64_t seed)
    {
        Rng r(seed);
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        r.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += r.gaussian(0.0f, 0.05f);
            s.push_back(x);
        }
        return s;
    }
};

void
expectIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.numel(), b.numel());
    for (int64_t j = 0; j < a.numel(); ++j)
        EXPECT_FLOAT_EQ(a[j], b[j]);
}

/**
 * Reference for one stream: a dedicated state over the same engine,
 * reset exactly at `cold_frames` (the frames the server executed
 * cold after an eviction).
 */
std::vector<Tensor>
referenceRun(const ReuseEngine &engine, const std::vector<Tensor> &frames,
             const std::vector<uint64_t> &cold_frames = {})
{
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    std::vector<Tensor> outputs;
    for (size_t i = 0; i < frames.size(); ++i) {
        if (std::find(cold_frames.begin(), cold_frames.end(), i) !=
            cold_frames.end())
            state.reset();
        outputs.push_back(engine.execute(state, frames[i], trace));
    }
    return outputs;
}

TEST(StreamingServer, InterleavedSessionsMatchIndependentRuns)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    const size_t kSessions = 6;
    const size_t kFrames = 20;

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    StreamingServer server(engine, cfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("default", s));
        streams.push_back(f.stream(kFrames, 1000 + 77 * s));
    }

    // Interleave: frame i of every session before frame i+1 of any.
    std::vector<std::vector<std::future<Tensor>>> futures(kSessions);
    for (size_t i = 0; i < kFrames; ++i)
        for (size_t s = 0; s < kSessions; ++s)
            futures[s].push_back(
                server.submitFrame(ids[s], streams[s][i]));
    server.drain();

    for (size_t s = 0; s < kSessions; ++s) {
        const auto want = referenceRun(engine, streams[s]);
        for (size_t i = 0; i < kFrames; ++i)
            expectIdentical(futures[s][i].get(), want[i]);
        const auto snap = server.sessionSnapshot(ids[s]);
        EXPECT_EQ(snap.framesCompleted, kFrames);
        EXPECT_EQ(snap.evictions, 0u);
        EXPECT_GT(snap.reuseRatio, 0.0);
    }
}

TEST(StreamingServer, FramesOfOneSessionCompleteInSubmissionOrder)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 8;  // many workers, one session: still serial
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    const auto frames = f.stream(50, 7);

    std::vector<std::future<Tensor>> futures;
    for (const Tensor &in : frames)
        futures.push_back(server.submitFrame(id, in));

    const auto want = referenceRun(engine, frames);
    for (size_t i = 0; i < frames.size(); ++i)
        expectIdentical(futures[i].get(), want[i]);
}

TEST(StreamingServer, EvictedSessionDegradesThenRewarms)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    const auto frames = f.stream(10, 13);

    std::vector<Tensor> got;
    for (size_t i = 0; i < 5; ++i)
        got.push_back(server.submitFrame(id, frames[i]).get());
    ASSERT_TRUE(server.forceEvict(id));
    for (size_t i = 5; i < frames.size(); ++i)
        got.push_back(server.submitFrame(id, frames[i]).get());

    const auto snap = server.sessionSnapshot(id);
    EXPECT_EQ(snap.evictions, 1u);
    ASSERT_EQ(snap.coldFrames.size(), 1u);
    EXPECT_EQ(snap.coldFrames[0], 5u);
    EXPECT_TRUE(snap.warm);

    const auto want = referenceRun(engine, frames, {5});
    for (size_t i = 0; i < frames.size(); ++i)
        expectIdentical(got[i], want[i]);
}

TEST(StreamingServer, RefreshBoundaryMatchesReference)
{
    ServerFixture f;
    ReuseEngineConfig ecfg;
    ecfg.refreshPeriod = 4;
    ReuseEngine engine(f.net, f.plan, ecfg);
    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    const auto frames = f.stream(11, 17);

    std::vector<std::future<Tensor>> futures;
    for (const Tensor &in : frames)
        futures.push_back(server.submitFrame(id, in));
    server.drain();

    // The external-state reference applies the same refresh period.
    const auto want = referenceRun(engine, frames);
    for (size_t i = 0; i < frames.size(); ++i)
        expectIdentical(futures[i].get(), want[i]);
    // Refreshes are not evictions.
    EXPECT_EQ(server.sessionSnapshot(id).evictions, 0u);
    EXPECT_TRUE(server.sessionSnapshot(id).coldFrames.empty());
}

TEST(StreamingServer, BudgetForcedEvictionsReplayExactly)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    // Budget fits roughly one of the three sessions, forcing steady
    // eviction churn at nondeterministic points in the interleaving.
    ReuseState probe = engine.makeState();
    ExecutionTrace trace;
    engine.execute(probe, f.calib[0], trace);

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    cfg.memoryBudgetBytes = probe.memoryBytes() * 3 / 2;
    StreamingServer server(engine, cfg);

    const size_t kSessions = 3;
    const size_t kFrames = 12;
    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    std::vector<std::vector<std::future<Tensor>>> futures(kSessions);
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("default", s));
        streams.push_back(f.stream(kFrames, 500 + 31 * s));
    }
    for (size_t i = 0; i < kFrames; ++i)
        for (size_t s = 0; s < kSessions; ++s)
            futures[s].push_back(
                server.submitFrame(ids[s], streams[s][i]));
    server.drain();

    EXPECT_GT(server.sessionManager().evictionCount(), 0u);

    // Whatever frames ran cold, replaying a dedicated state with
    // resets at exactly those frames must reproduce every output.
    for (size_t s = 0; s < kSessions; ++s) {
        const auto snap = server.sessionSnapshot(ids[s]);
        const auto want =
            referenceRun(engine, streams[s], snap.coldFrames);
        for (size_t i = 0; i < kFrames; ++i)
            expectIdentical(futures[s][i].get(), want[i]);
    }
}

TEST(StreamingServer, MultiModelZooRoutesByName)
{
    ServerFixture f;
    ReuseEngine engine_a(f.net, f.plan);

    Rng rng(92);
    Network other("tiny", Shape({6}));
    other.addLayer(std::make_unique<FullyConnectedLayer>("FC", 6, 3));
    initNetwork(other, rng);
    ReuseEngine engine_b(other, QuantizationPlan(other));

    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    StreamingServer server({{"speech", &engine_a}, {"tiny", &engine_b}},
                           cfg);
    const SessionId a = server.openSession("speech");
    const SessionId b = server.openSession("tiny");

    const Tensor out_a = server.submitFrame(a, f.calib[0]).get();
    const Tensor out_b = server.submitFrame(b, f.calib[1]).get();
    EXPECT_EQ(out_a.numel(), 4);
    EXPECT_EQ(out_b.numel(), 3);
    expectIdentical(out_b, other.forward(f.calib[1]));
}

TEST(StreamingServer, MetricsCountFramesAndSessions)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    StreamingServer server(engine, cfg);
    const SessionId a = server.openSession();
    const SessionId b = server.openSession();
    const auto frames = f.stream(8, 23);
    for (const Tensor &in : frames) {
        server.submitFrame(a, in);
        server.submitFrame(b, in);
    }
    server.drain();
    server.closeSession(b);

    const ServeMetrics &m = server.metrics();
    EXPECT_EQ(m.framesSubmitted(), 16u);
    EXPECT_EQ(m.framesCompleted(), 16u);
    EXPECT_EQ(m.sessionsOpened(), 2u);
    EXPECT_EQ(m.sessionsClosed(), 1u);
    EXPECT_EQ(m.latency().count(), 16u);
    EXPECT_GT(m.latency().percentile(0.99), 0.0);
    EXPECT_GE(m.queuePeak(), 1u);

    StatRegistry reg;
    server.publishStats(reg);
    EXPECT_DOUBLE_EQ(reg.get("serve.frames_completed").value(), 16.0);
    EXPECT_DOUBLE_EQ(reg.get("serve.sessions_live").value(), 1.0);
    EXPECT_TRUE(reg.has("serve.latency_p99_us"));
    EXPECT_TRUE(reg.has("serve.queue_depth"));
}

TEST(StreamingServer, CloseSessionWaitsForPendingFrames)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer::Config cfg;
    cfg.workerThreads = 1;
    StreamingServer server(engine, cfg);
    const SessionId id = server.openSession();
    std::vector<std::future<Tensor>> futures;
    for (const Tensor &in : f.stream(20, 29))
        futures.push_back(server.submitFrame(id, in));
    server.closeSession(id);
    // Every accepted frame completed before the session was removed.
    for (auto &fut : futures)
        EXPECT_GT(fut.get().numel(), 0);
    EXPECT_EQ(server.sessionManager().sessionCount(), 0u);
}

TEST(StreamingServer, StopIsIdempotentAndDrainsWorkers)
{
    ServerFixture f;
    ReuseEngine engine(f.net, f.plan);
    StreamingServer server(engine);
    const SessionId id = server.openSession();
    auto fut = server.submitFrame(id, f.calib[0]);
    fut.get();
    server.stop();
    server.stop();
}

TEST(StreamingServerDeath, RecurrentModelIsRejected)
{
    Rng rng(93);
    Network rnn("rnn", Shape({5}));
    rnn.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    initNetwork(rnn, rng);
    ReuseEngine engine(rnn, QuantizationPlan(rnn));
    EXPECT_DEATH({ StreamingServer server(engine); }, "recurrent");
}

} // namespace
} // namespace reuse
