/**
 * @file
 * Unit tests for ServeMetrics, including the reset-vs-publish
 * snapshot consistency regression: a publishTo() racing a reset()
 * must never surface a half-reset counter mix.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "serve/serve_metrics.h"

namespace reuse {
namespace {

TEST(ServeMetrics, CountersAccumulate)
{
    ServeMetrics m;
    m.frameSubmitted();
    m.frameSubmitted();
    m.frameCompleted(100.0);
    m.frameShed();
    m.eviction();
    EXPECT_EQ(m.framesSubmitted(), 2u);
    EXPECT_EQ(m.framesCompleted(), 1u);
    EXPECT_EQ(m.framesShed(), 1u);
    EXPECT_EQ(m.evictions(), 1u);
    EXPECT_EQ(m.latency().count(), 1u);
}

TEST(ServeMetrics, ResetZeroesEverything)
{
    ServeMetrics m;
    m.frameSubmitted();
    m.frameCompleted(50.0);
    m.sessionOpened();
    m.observeQueueDepth(7);
    m.reset();
    EXPECT_EQ(m.framesSubmitted(), 0u);
    EXPECT_EQ(m.framesCompleted(), 0u);
    EXPECT_EQ(m.sessionsOpened(), 0u);
    EXPECT_EQ(m.queuePeak(), 0u);
    EXPECT_EQ(m.latency().count(), 0u);
}

TEST(ServeMetrics, PublishToWritesPrefixedCounters)
{
    ServeMetrics m;
    m.frameSubmitted();
    m.frameCompleted(200.0);
    StatRegistry registry;
    m.publishTo(registry);
    EXPECT_EQ(registry.get("serve.frames_submitted").value(), 1.0);
    EXPECT_EQ(registry.get("serve.frames_completed").value(), 1.0);
    EXPECT_GT(registry.get("serve.latency_p50_us").value(), 0.0);
}

/**
 * Regression: reset() used to zero counters one at a time with no
 * exclusion against publishTo(), so a concurrent publisher could
 * snapshot frames_submitted already zeroed but frames_completed not
 * yet — a state (submitted=0, completed=64) that never existed.
 *
 * Each round fills to a quiescent 64/64, hands one reset() to the
 * other thread, and publishes while that reset is in flight: the only
 * concurrent writer is the reset, so every published pair must be
 * 64/64 (pre-reset) or 0/0 (post-reset) — never a mix.
 */
TEST(ServeMetrics, PublishNeverSeesTornReset)
{
    ServeMetrics m;
    std::atomic<int> go{0};
    std::atomic<int> done{0};

    std::thread resetter([&] {
        int seen = 0;
        while (true) {
            int round = go.load(std::memory_order_acquire);
            if (round == seen) {
                std::this_thread::yield();
                continue;
            }
            if (round < 0)
                break;
            m.reset();
            seen = round;
            done.store(round, std::memory_order_release);
        }
    });

    StatRegistry registry;
    auto expectConsistent = [&registry](int round) {
        const double submitted =
            registry.get("serve.frames_submitted").value();
        const double completed =
            registry.get("serve.frames_completed").value();
        EXPECT_EQ(completed, submitted)
            << "torn snapshot in round " << round;
    };

    for (int round = 1; round <= 200; ++round) {
        // Quiescent fill: no publisher is running yet this round.
        for (int i = 0; i < 64; ++i)
            m.frameSubmitted();
        for (int i = 0; i < 64; ++i)
            m.frameCompleted(10.0);

        go.store(round, std::memory_order_release);
        // Publish while the reset is (potentially) mid-flight.
        while (done.load(std::memory_order_acquire) != round) {
            m.publishTo(registry);
            expectConsistent(round);
        }
        m.publishTo(registry);
        expectConsistent(round);  // post-reset: 0/0
    }
    go.store(-1, std::memory_order_release);
    resetter.join();
}

} // namespace
} // namespace reuse
