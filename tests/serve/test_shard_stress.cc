/**
 * @file
 * Sharded-scheduler stress tests (label: stress; built for the TSan
 * CI job).  Submitters race across shards while eviction/re-warm and
 * forced session migration rip state out from under live frames; the
 * per-session serialization invariant must hold (outputs bit-exact
 * against a replay with resets at the recorded cold frames, no frame
 * dropped or double-run), and the shed/steal/migration accounting
 * must balance exactly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"
#include "support/diff_oracle.h"

namespace reuse {
namespace {

struct ShardFixture {
    Rng rng{47};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    ShardFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }

    std::vector<Tensor> stream(size_t frames, uint64_t seed)
    {
        Rng r(seed);
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        r.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += r.gaussian(0.0f, 0.05f);
            s.push_back(x);
        }
        return s;
    }
};

/**
 * The full melee: one submitter thread per session streaming frames
 * (blocking submits), a migrator thread bouncing every session
 * between shards, and an evictor thread dropping reuse buffers — all
 * concurrently, with work stealing enabled.  Every session must
 * afterwards be bit-exact against a replay with resets at exactly
 * its recorded cold frames, with every frame completed exactly once.
 */
TEST(ShardStress, SubmittersRacingMigrationAndEvictionStayBitExact)
{
    ShardFixture f;
    ReuseEngine engine(f.net, f.plan);
    constexpr size_t kSessions = 6;
    constexpr size_t kFrames = 48;
    constexpr size_t kShards = 3;

    StreamingServer::Config cfg;
    cfg.workerThreads = 6;
    cfg.shards = kShards;
    cfg.workStealing = true;
    StreamingServer server(engine, cfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession(
            "default", s,
            s % 2 == 0 ? SloClass::Interactive : SloClass::Standard));
        streams.push_back(f.stream(kFrames, 2100 + 13 * s));
    }

    std::atomic<bool> done{false};
    std::thread migrator([&] {
        uint64_t round = 0;
        while (!done.load(std::memory_order_acquire)) {
            server.migrateSession(ids[round % kSessions],
                                  round % kShards);
            ++round;
            std::this_thread::yield();
        }
    });
    std::thread evictor([&] {
        uint64_t round = 0;
        while (!done.load(std::memory_order_acquire)) {
            server.forceEvict(ids[round++ % kSessions]);
            std::this_thread::yield();
        }
    });

    std::vector<std::vector<std::future<Tensor>>> futures(kSessions);
    std::vector<std::thread> submitters;
    for (size_t s = 0; s < kSessions; ++s) {
        futures[s].reserve(kFrames);
        submitters.emplace_back([&, s] {
            for (size_t i = 0; i < kFrames; ++i)
                futures[s].push_back(
                    server.submitFrame(ids[s], streams[s][i]));
        });
    }
    for (auto &t : submitters)
        t.join();
    server.drain();

    // A deterministic tail: every session takes one guaranteed
    // eviction and one guaranteed migration, then streams a few more
    // frames (a single-CPU runner may drain everything before the
    // racing threads are ever scheduled).
    for (size_t s = 0; s < kSessions; ++s) {
        ASSERT_TRUE(server.forceEvict(ids[s]));
        // Move off the session's current shard (same-shard migration
        // is an uncounted no-op).
        const size_t cur = server.sessionSnapshot(ids[s]).shard;
        ASSERT_TRUE(
            server.migrateSession(ids[s], (cur + 1) % kShards));
    }
    const size_t kTail = 8;
    std::vector<std::vector<Tensor>> tails;
    for (size_t s = 0; s < kSessions; ++s) {
        tails.push_back(f.stream(kTail, 9000 + s));
        for (size_t i = 0; i < kTail; ++i)
            futures[s].push_back(
                server.submitFrame(ids[s], tails[s][i]));
    }
    server.drain();
    done.store(true, std::memory_order_release);
    migrator.join();
    evictor.join();

    for (size_t s = 0; s < kSessions; ++s) {
        std::vector<Tensor> outputs;
        for (auto &fut : futures[s])
            outputs.push_back(fut.get());
        std::vector<Tensor> all_frames = streams[s];
        all_frames.insert(all_frames.end(), tails[s].begin(),
                          tails[s].end());
        const auto snap = server.sessionSnapshot(ids[s]);
        EXPECT_EQ(snap.framesCompleted, kFrames + kTail);
        const auto report = testing::diffAgainstReplay(
            engine, all_frames, outputs, snap.coldFrames);
        EXPECT_TRUE(report.allBitExact())
            << "session " << s << " diverged at frame "
            << report.firstMismatchFrame << " (cold frames: "
            << snap.coldFrames.size() << ", shard " << snap.shard
            << ")";
    }
    EXPECT_GE(server.metrics().evictions(), kSessions);
    EXPECT_GE(server.metrics().migrations(), kSessions);
    EXPECT_EQ(server.metrics().framesCompleted(),
              kSessions * (kFrames + kTail));
}

/**
 * Racing trySubmit shedders: concurrent submitters against a tiny
 * admitted-frame capacity.  Whatever interleaving TSan explores, the
 * books must balance: accepted + shed == attempts, every accepted
 * frame completes, and the shed counter matches the rejections.
 */
TEST(ShardStress, RacingTrySubmitKeepsShedAccountingExact)
{
    ShardFixture f;
    ReuseEngine engine(f.net, f.plan);
    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 64;

    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    cfg.shards = 2;
    cfg.queueCapacity = 8;      // 4 admitted frames per shard
    StreamingServer server(engine, cfg);

    std::vector<SessionId> ids;
    for (size_t t = 0; t < kThreads; ++t)
        ids.push_back(server.openSession("default", t));

    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> shed{0};
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<Tensor>>> futures(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            const auto frames = f.stream(kPerThread, 3300 + t);
            for (const Tensor &frame : frames) {
                auto outcome =
                    server.trySubmitFrame(ids[t], frame);
                if (outcome.accepted()) {
                    accepted.fetch_add(1,
                                       std::memory_order_relaxed);
                    futures[t].push_back(
                        std::move(outcome.result));
                } else {
                    EXPECT_GT(outcome.retryAfterMicros, 0);
                    shed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    server.drain();

    EXPECT_EQ(accepted.load() + shed.load(), kThreads * kPerThread);
    EXPECT_EQ(server.metrics().framesSubmitted(), accepted.load());
    EXPECT_EQ(server.metrics().framesCompleted(), accepted.load());
    EXPECT_EQ(server.metrics().framesShed(), shed.load());
    for (auto &per_session : futures)
        for (auto &fut : per_session)
            EXPECT_EQ(fut.get().numel(), 4);
}

/**
 * Migration hammering one hot session: entries staled by migration
 * must never double-run or drop a frame — completions stay exactly
 * one per submit, in submission order (verified by bit-exactness of
 * the in-order output sequence).
 */
TEST(ShardStress, MigrationHammeringNeverDropsOrDoublesFrames)
{
    ShardFixture f;
    ReuseEngine engine(f.net, f.plan);
    constexpr size_t kFrames = 200;
    constexpr size_t kShards = 4;

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    cfg.shards = kShards;
    StreamingServer server(engine, cfg);

    const SessionId id = server.openSession("default", 1);
    const auto frames = f.stream(kFrames, 5150);

    std::atomic<bool> done{false};
    std::thread migrator([&] {
        uint64_t round = 0;
        while (!done.load(std::memory_order_acquire)) {
            server.migrateSession(id, round++ % kShards);
            std::this_thread::yield();
        }
    });

    std::vector<std::future<Tensor>> futures;
    futures.reserve(kFrames);
    for (const Tensor &frame : frames)
        futures.push_back(server.submitFrame(id, frame));
    server.drain();
    done.store(true, std::memory_order_release);
    migrator.join();

    std::vector<Tensor> outputs;
    for (auto &fut : futures)
        outputs.push_back(fut.get());
    const auto snap = server.sessionSnapshot(id);
    EXPECT_EQ(snap.framesCompleted, kFrames);
    const auto report = testing::diffAgainstReplay(
        engine, frames, outputs, snap.coldFrames);
    EXPECT_TRUE(report.allBitExact())
        << "diverged at frame " << report.firstMismatchFrame;
    EXPECT_EQ(server.metrics().framesCompleted(), kFrames);
}

} // namespace
} // namespace reuse
