/**
 * @file
 * Deterministic exemplar-capture tests: the retroactive tail-latency
 * recorder (obs/exemplar.h) driven through the serving runtime under
 * the virtual clock and manual dispatch, so every commit decision —
 * miss, exact threshold boundary, shed, low-reuse floor, ring
 * eviction — is exactly reproducible with zero wall-clock sleeps.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "obs/exemplar.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"
#include "support/virtual_clock.h"

namespace reuse {
namespace {

using testing::VirtualClock;

/**
 * The recorder is process-wide; disarm and empty it around every test
 * so commits cannot leak across tests in this binary.
 */
class ExemplarTest : public ::testing::Test
{
  protected:
    void SetUp() override { reset(); }
    void TearDown() override { reset(); }

    static void reset()
    {
        obs::ExemplarRecorder::Policy off;
        off.armed = false;
        obs::ExemplarRecorder::instance().configure(off);
        obs::ExemplarRecorder::instance().clear();
    }
};

struct ExemplarFixture {
    Rng rng{91};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan{net};

    ExemplarFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 64,
                        {0, 2});
    }

    Tensor frame(uint64_t seed)
    {
        Rng r(seed);
        Tensor t(Shape({6}));
        r.fillGaussian(t.data(), 0.0f, 1.0f);
        return t;
    }

    /** Manual-dispatch config with exemplar capture armed. */
    StreamingServer::Config armedConfig(VirtualClock &clock,
                                        size_t shards = 1)
    {
        StreamingServer::Config cfg;
        cfg.manualDispatch = true;
        cfg.workerThreads = shards;
        cfg.shards = shards;
        cfg.clock = &clock;
        cfg.exemplars.enabled = true;
        return cfg;
    }
};

TEST_F(ExemplarTest, HealthyFrameCommitsNothing)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.armedConfig(clock));
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);

    // Completes at the submit instant under the virtual clock:
    // latency 0, no miss, no threshold -> discard, zero cost kept.
    auto fut = server.submitFrame(id, f.frame(1));
    ASSERT_TRUE(server.runOne(0));
    fut.get();

    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();
    EXPECT_EQ(rec.committed(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST_F(ExemplarTest, DeadlineMissCommitsWithCausalTimeline)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.armedConfig(clock));
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);

    auto fut = server.submitFrame(id, f.frame(1));
    clock.advance(50'000);  // sit in queue past the 10 ms budget
    ASSERT_TRUE(server.runOne(0));
    fut.get();

    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();
    ASSERT_EQ(rec.committed(), 1u);
    const std::vector<obs::Exemplar> ring = rec.snapshot();
    ASSERT_EQ(ring.size(), 1u);
    const obs::Exemplar &ex = ring[0];
    EXPECT_EQ(ex.session, id);
    EXPECT_EQ(ex.frame, 0u);
    EXPECT_EQ(ex.causes, obs::kExemplarDeadlineMiss);
    EXPECT_EQ(ex.latencyUs, 50'000);
    EXPECT_GT(ex.deadlineMicros, 0);
    EXPECT_FALSE(ex.stolen);
    EXPECT_EQ(ex.migrations, 0u);
    EXPECT_EQ(rec.className(ex.sloClass), "interactive");
    // The staged timeline must carry the frame execution, its queue
    // wait, and one span per network layer.
    size_t frame_execs = 0, queue_waits = 0, layer_execs = 0;
    for (const obs::ExemplarSpan &s : ex.spans) {
        frame_execs += s.kind == obs::SpanKind::FrameExec ? 1 : 0;
        queue_waits += s.kind == obs::SpanKind::QueueWait ? 1 : 0;
        layer_execs += s.kind == obs::SpanKind::LayerExec ? 1 : 0;
    }
    EXPECT_EQ(frame_execs, 1u);
    EXPECT_EQ(queue_waits, 1u);
    EXPECT_EQ(layer_execs, 3u);
}

TEST_F(ExemplarTest, ThresholdBoundaryExactlyAtIsHealthy)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg = f.armedConfig(clock);
    cfg.exemplars.latencyThresholdMicros[static_cast<size_t>(
        SloClass::Interactive)] = 5'000;
    StreamingServer server(engine, cfg);
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();

    // latency == threshold: healthy by definition (strictly-greater
    // commits), so the boundary frame is discarded...
    auto at = server.submitFrame(id, f.frame(1));
    clock.advance(5'000);
    ASSERT_TRUE(server.runOne(0));
    at.get();
    EXPECT_EQ(rec.committed(), 0u);

    // ...and one microsecond over commits with the threshold cause
    // alone (6 ms is still inside the 10 ms deadline).
    auto over = server.submitFrame(id, f.frame(2));
    clock.advance(5'001);
    ASSERT_TRUE(server.runOne(0));
    over.get();
    ASSERT_EQ(rec.committed(), 1u);
    const std::vector<obs::Exemplar> ring = rec.snapshot();
    EXPECT_EQ(ring[0].causes, obs::kExemplarLatencyThreshold);
    EXPECT_EQ(ring[0].latencyUs, 5'001);
}

TEST_F(ExemplarTest, PerClassThresholdsAreIndependent)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg = f.armedConfig(clock);
    cfg.exemplars.latencyThresholdMicros[static_cast<size_t>(
        SloClass::Interactive)] = 1'000;
    cfg.exemplars.latencyThresholdMicros[static_cast<size_t>(
        SloClass::Standard)] = 20'000;
    StreamingServer server(engine, cfg);
    const SessionId standard =
        server.openSession("default", 1, SloClass::Standard);
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();

    // 2 ms would commit under the interactive threshold, but this is
    // a standard-class frame: its own 20 ms threshold governs.
    auto fut = server.submitFrame(standard, f.frame(1));
    clock.advance(2'000);
    ASSERT_TRUE(server.runOne(0));
    fut.get();
    EXPECT_EQ(rec.committed(), 0u);

    auto slow = server.submitFrame(standard, f.frame(2));
    clock.advance(20'001);
    ASSERT_TRUE(server.runOne(0));
    slow.get();
    ASSERT_EQ(rec.committed(), 1u);
    EXPECT_EQ(rec.snapshot()[0].causes,
              obs::kExemplarLatencyThreshold);
    EXPECT_EQ(rec.className(rec.snapshot()[0].sloClass), "standard");
}

TEST_F(ExemplarTest, ShedFrameCommitsMinimalExemplar)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg = f.armedConfig(clock);
    cfg.initialServiceEstimateMicros = 5'000;  // 5 ms/frame, 1 worker
    StreamingServer server(engine, cfg);
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();

    // Three force-admitted 10 ms-deadline frames occupy 15 ms; a
    // fourth provably cannot finish and is shed at admission.
    std::vector<std::future<Tensor>> backlog;
    for (int i = 0; i < 3; ++i)
        backlog.push_back(server.submitFrame(id, f.frame(10 + i)));
    auto shed = server.trySubmitFrame(id, f.frame(20));
    ASSERT_FALSE(shed.accepted());

    ASSERT_EQ(rec.committed(), 1u);
    const obs::Exemplar ex = rec.snapshot()[0];
    EXPECT_EQ(ex.causes, obs::kExemplarShed);
    EXPECT_EQ(ex.session, id);
    EXPECT_EQ(ex.latencyUs, 0);
    ASSERT_EQ(ex.spans.size(), 1u);
    EXPECT_EQ(ex.spans[0].kind, obs::SpanKind::FrameShed);
    // The staged hint is the admission backoff.
    EXPECT_EQ(ex.spans[0].b, shed.retryAfterMicros);

    while (server.runOne(0)) {
    }
}

TEST_F(ExemplarTest, LowReuseFloorCommitsSteadyFrames)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg = f.armedConfig(clock);
    cfg.exemplars.lowReuseFloor = 1.1;  // > any ratio: always commits
    StreamingServer server(engine, cfg);
    const SessionId id =
        server.openSession("default", 1, SloClass::Batch);
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();

    // First frame: all first executions, no steady-state reuse ratio
    // to judge -> the floor does not apply.
    auto first = server.submitFrame(id, f.frame(1));
    ASSERT_TRUE(server.runOne(0));
    first.get();
    EXPECT_EQ(rec.committed(), 0u);

    // Second frame is steady state: its ratio exists (>= 0) and lies
    // under the impossible floor -> committed for low reuse alone.
    auto steady = server.submitFrame(id, f.frame(2));
    ASSERT_TRUE(server.runOne(0));
    steady.get();
    ASSERT_EQ(rec.committed(), 1u);
    const obs::Exemplar ex = rec.snapshot()[0];
    EXPECT_EQ(ex.causes, obs::kExemplarLowReuse);
    EXPECT_GE(ex.reuseRatio, 0.0);
    EXPECT_LE(ex.reuseRatio, 1.0);
}

TEST_F(ExemplarTest, RingEvictsOldestAndCountsDrops)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg = f.armedConfig(clock);
    cfg.exemplars.ringCapacity = 2;
    StreamingServer server(engine, cfg);
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();

    for (int i = 0; i < 3; ++i) {
        auto fut = server.submitFrame(id, f.frame(1 + i));
        clock.advance(50'000);
        ASSERT_TRUE(server.runOne(0));
        fut.get();
    }
    EXPECT_EQ(rec.committed(), 3u);
    EXPECT_EQ(rec.dropped(), 1u);
    const std::vector<obs::Exemplar> ring = rec.snapshot();
    ASSERT_EQ(ring.size(), 2u);
    // Oldest first; frame 0's exemplar was evicted.
    EXPECT_EQ(ring[0].frame, 1u);
    EXPECT_EQ(ring[1].frame, 2u);

    // Loss accounting is a scrapeable gauge, not just trace metadata.
    StatRegistry reg;
    server.publishStats(reg);
    EXPECT_DOUBLE_EQ(
        reg.get("obs.trace.exemplars_committed").value(), 3.0);
    EXPECT_DOUBLE_EQ(reg.get("obs.trace.exemplars_dropped").value(),
                     1.0);
    EXPECT_DOUBLE_EQ(
        reg.get("obs.trace.exemplar_staging_overflows").value(), 0.0);
}

TEST_F(ExemplarTest, StolenFrameIsMarkedStolen)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.armedConfig(clock, /*shards=*/2));
    const SessionId remote =
        server.openSession("default", 2, SloClass::Interactive);
    ASSERT_TRUE(server.migrateSession(remote, 1));
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();
    rec.clear();  // migration happened before any frame; keep 0 hops

    auto fut = server.submitFrame(remote, f.frame(1));
    clock.advance(50'000);
    // Shard 0 is idle; it steals shard 1's late frame.
    ASSERT_TRUE(server.runOne(0, /*allow_steal=*/true));
    fut.get();
    EXPECT_EQ(server.metrics().steals(), 1u);

    ASSERT_EQ(rec.committed(), 1u);
    const obs::Exemplar ex = rec.snapshot()[0];
    EXPECT_TRUE(ex.stolen);
    EXPECT_EQ(ex.migrations, 0u);
}

TEST_F(ExemplarTest, MigratedBacklogCountsPlacementHops)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer server(engine, f.armedConfig(clock, /*shards=*/2));
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);
    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();

    // The frame is submitted under epoch 0, rides one migration, and
    // runs late on the new shard: the exemplar counts the hop.
    auto fut = server.submitFrame(id, f.frame(1));
    ASSERT_TRUE(server.migrateSession(id, 1));
    clock.advance(50'000);
    ASSERT_TRUE(server.runOne(1));
    fut.get();

    ASSERT_EQ(rec.committed(), 1u);
    const obs::Exemplar ex = rec.snapshot()[0];
    EXPECT_EQ(ex.migrations, 1u);
    EXPECT_FALSE(ex.stolen);
}

TEST_F(ExemplarTest, DisarmedRecorderStagesAndCommitsNothing)
{
    ExemplarFixture f;
    ReuseEngine engine(f.net, f.plan);
    VirtualClock clock;
    StreamingServer::Config cfg;
    cfg.manualDispatch = true;
    cfg.workerThreads = 1;
    cfg.clock = &clock;  // exemplars.enabled left false
    StreamingServer server(engine, cfg);
    const SessionId id =
        server.openSession("default", 1, SloClass::Interactive);

    auto fut = server.submitFrame(id, f.frame(1));
    clock.advance(50'000);  // a miss — but nobody is listening
    ASSERT_TRUE(server.runOne(0));
    fut.get();

    obs::ExemplarRecorder &rec = obs::ExemplarRecorder::instance();
    EXPECT_EQ(rec.committed(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
}

} // namespace
} // namespace reuse
