# Negative-compile test driver, run by ctest (see tests/CMakeLists.txt):
#
#   cmake -P negative_compile.cmake  (with -DCOMPILER=... -DCOMPILER_ID=...
#                                     -DSOURCE=... -DINCLUDE_DIR=...)
#
# Compiles tests/sync/guarded_by_violation.cc, which accesses a
# GUARDED_BY member without its lock:
#
#  - Clang: the thread-safety analysis must REJECT it.  Compiling
#    cleanly means the annotations are inert -> test fails.
#  - GCC (no analysis; the sync.h macros expand to nothing): it must
#    compile CLEANLY.  A failure means the annotation macros broke the
#    non-Clang build -> test fails.

if(NOT COMPILER OR NOT COMPILER_ID OR NOT SOURCE OR NOT INCLUDE_DIR)
    message(FATAL_ERROR "usage: cmake -DCOMPILER=... -DCOMPILER_ID=... "
                        "-DSOURCE=... -DINCLUDE_DIR=... -P negative_compile.cmake")
endif()

set(flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})
if(COMPILER_ID MATCHES "Clang")
    list(APPEND flags -Wthread-safety -Werror=thread-safety-analysis)
endif()

execute_process(
    COMMAND ${COMPILER} ${flags} ${SOURCE}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(COMPILER_ID MATCHES "Clang")
    if(rc EQUAL 0)
        message(FATAL_ERROR
            "GUARDED_BY violation compiled cleanly under Clang; the "
            "thread-safety annotations are not being enforced")
    endif()
    if(NOT err MATCHES "thread-safety")
        message(FATAL_ERROR
            "compile failed, but not with a thread-safety diagnostic:\n${err}")
    endif()
    message(STATUS "thread-safety analysis rejected the violation, as required")
else()
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "annotation macros must be inert off-Clang, but the fixture "
            "failed to compile with ${COMPILER_ID}:\n${err}")
    endif()
    message(STATUS "annotations inert under ${COMPILER_ID}, as required")
endif()
