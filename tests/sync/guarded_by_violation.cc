/**
 * @file
 * Negative-compile fixture for the thread-safety annotations.
 *
 * This translation unit reads and writes a GUARDED_BY member without
 * holding its mutex.  Under Clang with -Werror=thread-safety-analysis
 * it MUST fail to compile — that failure is the test.  Under GCC the
 * annotations expand to nothing and the file compiles cleanly, which
 * the harness treats as the expected outcome (the analysis only runs
 * under Clang; see tests/sync/negative_compile.cmake).
 *
 * Never add this file to any library or executable target.
 */

#include "common/sync.h"

namespace {

class Counter
{
  public:
    void increment()
    {
        // BUG (deliberate): value_ is written without locking mu_.
        ++value_;
    }

    int unsafeRead() const
    {
        // BUG (deliberate): value_ is read without locking mu_.
        return value_;
    }

  private:
    mutable reuse::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.increment();
    return c.unsafeRead() == 1 ? 0 : 1;
}
