/** @file Unit and concurrency tests for the process-wide plan cache.
 *
 *  The racing tests run under TSan in CI (ctest labels them tier1;
 *  the tsan job builds and runs this binary explicitly), so they
 *  double as data-race checks on PlanCache and on concurrent
 *  multi-model engine construction.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "ir/plan_cache.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"

namespace reuse {
namespace ir {
namespace {

/** Small random MLP + plan, distinct per (name, seed). */
struct Model {
    std::unique_ptr<Network> net;
    QuantizationPlan plan;
    Tensor frame{Shape({6})};

    Model(const std::string &name, uint64_t seed, int64_t hidden = 10)
    {
        Rng rng(seed);
        net = std::make_unique<Network>(name, Shape({6}));
        net->addLayer(std::make_unique<FullyConnectedLayer>(
            "FC1", 6, hidden));
        net->addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net->addLayer(std::make_unique<FullyConnectedLayer>(
            "FC2", hidden, 4));
        initNetwork(*net, rng);
        std::vector<Tensor> calib;
        for (int i = 0; i < 8; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(*net, profileNetworkRanges(*net, calib), 128,
                        {0, 2});
        frame = calib[0];
    }
};

TEST(PlanCacheTest, SameModelSharesOnePlan)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    Model m("cache-same", 11);
    const PlanCache::Stats before = cache.stats();
    const auto a = cache.getOrCompile(*m.net, m.plan);
    const auto b = cache.getOrCompile(*m.net, m.plan);
    EXPECT_EQ(a.get(), b.get());
    const PlanCache::Stats after = cache.stats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_GE(after.size, 1u);
}

TEST(PlanCacheTest, OptionsAreCacheKey)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    Model m("cache-options", 13);
    CompileOptions unfused;
    unfused.fuseActivations = false;
    const auto a = cache.getOrCompile(*m.net, m.plan);
    const auto b = cache.getOrCompile(*m.net, m.plan, unfused);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->fusedCount(), 1u);
    EXPECT_EQ(b->fusedCount(), 0u);
}

TEST(PlanCacheTest, EnginesShareTheCachedPlan)
{
    PlanCache::instance().clear();
    Model m("cache-engines", 17);
    ReuseEngine a(*m.net, m.plan);
    ReuseEngine b(*m.net, m.plan);
    EXPECT_EQ(a.compiledPlanPtr().get(), b.compiledPlanPtr().get());
}

TEST(PlanCacheTest, LruEvictionRespectsCapacity)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    const size_t saved = cache.capacity();
    cache.setCapacity(2);
    Model m1("evict-1", 19), m2("evict-2", 23), m3("evict-3", 29);
    const auto p1 = cache.getOrCompile(*m1.net, m1.plan);
    cache.getOrCompile(*m2.net, m2.plan);
    cache.getOrCompile(*m3.net, m3.plan);
    EXPECT_LE(cache.stats().size, 2u);
    // Evicted plans stay alive for holders of the shared_ptr.
    EXPECT_TRUE(p1->valid());
    cache.setCapacity(saved);
    cache.clear();
}

TEST(PlanCacheTest, RacingTwoModelEngineConstruction)
{
    // Two distinct models, many threads racing session (engine)
    // creation through the shared cache — the multi-model serving
    // pattern.  Each model must compile exactly once.
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    Model ma("race-a", 31, 10), mb("race-b", 37, 14);
    const PlanCache::Stats before = cache.stats();

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const CompiledPlan>> plans(kThreads);
    std::vector<Tensor> outputs(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Model &m = (t % 2 == 0) ? ma : mb;
            ReuseEngine engine(*m.net, m.plan);
            plans[t] = engine.compiledPlanPtr();
            outputs[t] = engine.execute(m.frame);
        });
    }
    for (std::thread &t : threads)
        t.join();

    const PlanCache::Stats after = cache.stats();
    EXPECT_EQ(after.misses, before.misses + 2);
    EXPECT_EQ(after.hits, before.hits + kThreads - 2);
    for (int t = 2; t < kThreads; ++t) {
        EXPECT_EQ(plans[t].get(), plans[t - 2].get())
            << "thread " << t;
        for (int64_t j = 0; j < outputs[t].numel(); ++j)
            EXPECT_EQ(outputs[t][j], outputs[t - 2][j]);
    }
}

TEST(PlanCacheTest, RacingTwoModelSessionCreation)
{
    // Full serving path: engines for two models built on racing
    // threads (the cache-miss race), then one zoo server with
    // sessions opened and driven from racing threads.
    PlanCache::instance().clear();
    Model ma("serve-a", 41, 10), mb("serve-b", 43, 12);

    std::vector<std::unique_ptr<ReuseEngine>> engines(4);
    std::vector<std::thread> builders;
    for (size_t t = 0; t < engines.size(); ++t) {
        builders.emplace_back([&, t] {
            Model &m = (t % 2 == 0) ? ma : mb;
            engines[t] = std::make_unique<ReuseEngine>(*m.net, m.plan);
        });
    }
    for (std::thread &t : builders)
        t.join();
    EXPECT_EQ(PlanCache::instance().stats().size, 2u);

    StreamingServer::Config cfg;
    cfg.workerThreads = 2;
    StreamingServer server({{"a", engines[0].get()},
                            {"b", engines[1].get()}},
                           cfg);
    constexpr int kSessions = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kSessions; ++t) {
        threads.emplace_back([&, t] {
            Model &m = (t % 2 == 0) ? ma : mb;
            const SessionId id =
                server.openSession(t % 2 == 0 ? "a" : "b",
                                   static_cast<uint64_t>(t));
            server.submitFrame(id, m.frame).wait();
        });
    }
    for (std::thread &t : threads)
        t.join();
    server.drain();
}

} // namespace
} // namespace ir
} // namespace reuse
