/** @file Unit tests for CompiledPlan, including fused-vs-unfused
 *  bit-exactness through the differential oracle. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "ir/compiled_plan.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/pooling.h"
#include "quant/range_profiler.h"
#include "support/diff_oracle.h"

namespace reuse {
namespace ir {
namespace {

/** Random MLP with fusable activations and a quantization plan. */
struct MlpFixture {
    Rng rng{73};
    Network net{"fused-mlp", Shape({6})};
    std::vector<Tensor> calib;
    QuantizationPlan plan;

    MlpFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 12));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 12, 8));
        net.addLayer(std::make_unique<ActivationLayer>(
            "SIGM", ActivationKind::Sigmoid));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC3", 8, 4));
        net.addLayer(std::make_unique<ActivationLayer>(
            "SM", ActivationKind::Softmax));
        initNetwork(net, rng);
        for (int i = 0; i < 12; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 256,
                        {0, 2, 4});
    }

    std::vector<Tensor> stream(size_t frames, float sigma)
    {
        std::vector<Tensor> s;
        Tensor x = calib[0];
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < x.numel(); ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

/** Random conv net (conv+ReLU pairs, flatten, FC head). */
struct ConvFixture {
    Rng rng{97};
    Network net{"fused-cnn", Shape({2, 10, 10})};
    std::vector<Tensor> calib;
    QuantizationPlan plan;

    ConvFixture()
    {
        net.addLayer(
            std::make_unique<Conv2DLayer>("C1", 2, 4, 3, 1));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU1", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<Conv2DLayer>("C2", 4, 4, 3, 1));
        net.addLayer(std::make_unique<ActivationLayer>(
            "TANH", ActivationKind::Tanh));
        net.addLayer(std::make_unique<FlattenLayer>("FLAT"));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC", 144, 5));
        initNetwork(net, rng);
        for (int i = 0; i < 8; ++i) {
            Tensor t(Shape({2, 10, 10}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        plan = makePlan(net, profileNetworkRanges(net, calib), 256,
                        {0, 2, 5});
    }

    std::vector<Tensor> stream(size_t frames, float sigma)
    {
        std::vector<Tensor> s;
        Tensor x = calib[0];
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < x.numel(); ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

TEST(CompiledPlanTest, SchedulesFusedStepsWithModes)
{
    MlpFixture f;
    const auto plan = CompiledPlan::compile(f.net, f.plan);
    ASSERT_TRUE(plan->valid());
    EXPECT_EQ(plan->layerCount(), 6u);
    EXPECT_EQ(plan->fusedCount(), 3u);
    ASSERT_EQ(plan->steps().size(), 3u);
    for (const PlanStep &step : plan->steps()) {
        EXPECT_EQ(step.mode, ExecMode::FcReuse);
        EXPECT_TRUE(step.reuseSafe);
        ASSERT_NE(step.fusedActivation, nullptr);
        EXPECT_EQ(step.fusedActivationIndex, step.layerIndex + 1);
    }
    EXPECT_EQ(plan->steps()[0].inShape, Shape({6}));
    EXPECT_EQ(plan->steps()[0].outShape, Shape({12}));
}

TEST(CompiledPlanTest, FusionCanBeDisabled)
{
    MlpFixture f;
    CompileOptions options;
    options.fuseActivations = false;
    const auto plan = CompiledPlan::compile(f.net, f.plan, options);
    ASSERT_TRUE(plan->valid());
    EXPECT_EQ(plan->fusedCount(), 0u);
    EXPECT_EQ(plan->steps().size(), 6u);
    for (const PlanStep &step : plan->steps())
        EXPECT_EQ(step.fusedActivation, nullptr);
}

TEST(CompiledPlanTest, InvalidModelCompilesToEmptySchedule)
{
    Network net("broken", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 16, 2));
    const auto plan =
        CompiledPlan::compile(net, QuantizationPlan(net));
    EXPECT_FALSE(plan->valid());
    EXPECT_TRUE(plan->steps().empty());
    EXPECT_TRUE(plan->report().has(diag::kShapeMismatch));
    EXPECT_NE(plan->dump().find("no schedule"), std::string::npos);
}

TEST(CompiledPlanTest, DumpIsStableAndFloatFree)
{
    MlpFixture f;
    const auto plan = CompiledPlan::compile(f.net, f.plan);
    const std::string dump = plan->dump();
    EXPECT_EQ(dump, plan->dump());
    EXPECT_NE(dump.find("plan fused-mlp"), std::string::npos);
    EXPECT_NE(dump.find("fused(RELU:relu)"), std::string::npos);
    EXPECT_NE(dump.find("fc-reuse"), std::string::npos);
    EXPECT_EQ(dump.find('.'), std::string::npos);  // no floats
}

TEST(CompiledPlanTest, FusedMlpIsBitExactAgainstUnfused)
{
    MlpFixture f;
    ReuseEngineConfig unfused_cfg;
    unfused_cfg.compileOptions.fuseActivations = false;
    ReuseEngine fused(f.net, f.plan);
    ReuseEngine unfused(f.net, f.plan, unfused_cfg);
    ASSERT_EQ(fused.compiledPlan().fusedCount(), 3u);
    ASSERT_EQ(unfused.compiledPlan().fusedCount(), 0u);

    const std::vector<Tensor> inputs = f.stream(24, 0.05f);
    std::vector<Tensor> outputs;
    for (const Tensor &in : inputs)
        outputs.push_back(fused.execute(in));

    const testing::OracleReport report =
        testing::diffAgainstReplay(unfused, inputs, outputs);
    EXPECT_TRUE(report.allBitExact())
        << "first mismatch at frame " << report.firstMismatchFrame
        << ", max |diff| " << report.maxAbsDiff;
}

TEST(CompiledPlanTest, FusedConvNetIsBitExactAgainstUnfused)
{
    ConvFixture f;
    ReuseEngineConfig unfused_cfg;
    unfused_cfg.compileOptions.fuseActivations = false;
    ReuseEngine fused(f.net, f.plan);
    ReuseEngine unfused(f.net, f.plan, unfused_cfg);
    ASSERT_EQ(fused.compiledPlan().fusedCount(), 2u);

    const std::vector<Tensor> inputs = f.stream(12, 0.03f);
    std::vector<Tensor> outputs;
    for (const Tensor &in : inputs)
        outputs.push_back(fused.execute(in));

    const testing::OracleReport report =
        testing::diffAgainstReplay(unfused, inputs, outputs);
    EXPECT_TRUE(report.allBitExact())
        << "first mismatch at frame " << report.firstMismatchFrame
        << ", max |diff| " << report.maxAbsDiff;
}

TEST(CompiledPlanTest, FusedTracesMatchUnfusedLayout)
{
    // Fused execution must stay trace-compatible: one record per
    // original layer, with the fused activation's slot filled.
    MlpFixture f;
    ReuseEngine fused(f.net, f.plan);
    fused.execute(f.calib[0]);
    const ExecutionTrace &trace = fused.lastTrace();
    ASSERT_EQ(trace.size(), 6u);
    for (size_t li = 0; li < trace.size(); ++li) {
        EXPECT_GT(trace[li].outputsTotal, 0) << "layer " << li;
        EXPECT_EQ(trace[li].reuseEnabled, li % 2 == 0)
            << "layer " << li;
    }
}

TEST(CompiledPlanTest, PinnedCompileDowngradesUnsafeReuse)
{
    Network net("pinned", Shape({4, 8, 8}));
    net.addLayer(std::make_unique<MaxPool2DLayer>("POOL", 2));
    QuantizationPlan qp(net);
    qp.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
    CompileOptions options;
    options.pinUnsafeLayers = true;
    const auto plan = CompiledPlan::compile(net, qp, options);
    ASSERT_TRUE(plan->valid());
    EXPECT_EQ(plan->pinnedCount(), 1u);
    ASSERT_EQ(plan->steps().size(), 1u);
    EXPECT_EQ(plan->steps()[0].mode, ExecMode::FromScratch);
    EXPECT_TRUE(plan->steps()[0].pinned);
    EXPECT_FALSE(plan->steps()[0].quant.enabled());
}

} // namespace
} // namespace ir
} // namespace reuse
