/** @file Unit tests for the graph IR data model. */

#include <gtest/gtest.h>

#include "ir/graph.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"
#include "nn/pooling.h"
#include "quant/quantization_plan.h"

namespace reuse {
namespace ir {
namespace {

TEST(GraphIr, ReuseEligibilityFollowsLinearity)
{
    EXPECT_TRUE(isReuseEligible(LayerKind::FullyConnected));
    EXPECT_TRUE(isReuseEligible(LayerKind::Conv2D));
    EXPECT_TRUE(isReuseEligible(LayerKind::Conv3D));
    EXPECT_TRUE(isReuseEligible(LayerKind::Lstm));
    EXPECT_TRUE(isReuseEligible(LayerKind::BiLstm));
    EXPECT_FALSE(isReuseEligible(LayerKind::Activation));
    EXPECT_FALSE(isReuseEligible(LayerKind::MaxPool2D));
    EXPECT_FALSE(isReuseEligible(LayerKind::MaxPool3D));
    EXPECT_FALSE(isReuseEligible(LayerKind::Flatten));
}

TEST(GraphIr, FromNetworkBuildsChain)
{
    Network net("chain", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<ActivationLayer>(
        "RELU", ActivationKind::ReLU));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 4, 2));

    const Graph graph = Graph::fromNetwork(net);
    ASSERT_EQ(graph.nodeCount(), 3u);
    EXPECT_EQ(graph.name(), "chain");
    EXPECT_EQ(graph.inputShape(), Shape({8}));
    EXPECT_EQ(graph.output(), 2u);
    EXPECT_FALSE(graph.recurrent());
    EXPECT_FALSE(graph.planSizeMismatch());

    EXPECT_TRUE(graph.node(0).inputs.empty());
    ASSERT_EQ(graph.node(0).outputs.size(), 1u);
    EXPECT_EQ(graph.node(0).outputs[0], 1u);
    ASSERT_EQ(graph.node(1).inputs.size(), 1u);
    EXPECT_EQ(graph.node(1).inputs[0], 0u);
    EXPECT_TRUE(graph.node(2).outputs.empty());
    EXPECT_EQ(graph.node(1).layerIndex, 1u);
    EXPECT_EQ(&net.layer(1), graph.node(1).layer);
}

TEST(GraphIr, FromNetworkCarriesPlanQuantization)
{
    Network net("planned", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 4, 2));
    QuantizationPlan plan(net);
    plan.layer(1).input = LinearQuantizer(16, -1.0f, 1.0f);

    const Graph graph = Graph::fromNetwork(net, plan);
    EXPECT_FALSE(graph.node(0).quant.enabled());
    ASSERT_TRUE(graph.node(1).quant.enabled());
    EXPECT_EQ(graph.node(1).quant.input->clusters(), 16);
}

TEST(GraphIr, PlanSizeMismatchIsRecordedNotApplied)
{
    Network net("mismatch", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 4, 2));
    Network other("other", Shape({8}));
    other.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 4));
    QuantizationPlan short_plan(other);
    short_plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);

    const Graph graph = Graph::fromNetwork(net, short_plan);
    EXPECT_TRUE(graph.planSizeMismatch());
    EXPECT_EQ(graph.planSize(), 1u);
    for (const Node &node : graph.nodes())
        EXPECT_FALSE(node.quant.enabled());
}

TEST(GraphIr, RecurrentDetectsLstmLayers)
{
    Network net("rnn", Shape({8}));
    net.addLayer(std::make_unique<BiLstmLayer>("BLSTM", 8, 4));
    EXPECT_TRUE(Graph::fromNetwork(net).recurrent());
}

TEST(GraphIr, TopoOrderOfChainIsLayerOrder)
{
    Network net("chain", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 4, 2));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC3", 2, 2));
    const std::vector<NodeId> order =
        Graph::fromNetwork(net).topoOrder();
    ASSERT_EQ(order.size(), 3u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(GraphIr, TopoOrderHandlesBranches)
{
    // Diamond: A feeds B and C, both feed D.  Kahn with a FIFO and
    // insertion-order sources must place A first and D last.
    FullyConnectedLayer fc("FC", 4, 4);
    Graph graph("diamond", Shape({4}));
    const NodeId a = graph.addNode(&fc, 0);
    const NodeId b = graph.addNode(&fc, 1);
    const NodeId c = graph.addNode(&fc, 2);
    const NodeId d = graph.addNode(&fc, 3);
    graph.connect(a, b);
    graph.connect(a, c);
    graph.connect(b, d);
    graph.connect(c, d);
    graph.setOutput(d);

    const std::vector<NodeId> order = graph.topoOrder();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), a);
    EXPECT_EQ(order.back(), d);
}

TEST(GraphIrDeathTest, TopoOrderPanicsOnCycle)
{
    FullyConnectedLayer fc("FC", 4, 4);
    Graph graph("loop", Shape({4}));
    const NodeId a = graph.addNode(&fc, 0);
    const NodeId b = graph.addNode(&fc, 1);
    graph.connect(a, b);
    graph.connect(b, a);
    graph.setOutput(b);
    EXPECT_DEATH(graph.topoOrder(), "cycle");
}

} // namespace
} // namespace ir
} // namespace reuse
