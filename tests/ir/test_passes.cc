/** @file Unit tests for the IR rewrite passes. */

#include <gtest/gtest.h>

#include "ir/graph.h"
#include "ir/passes.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"
#include "nn/pnorm.h"
#include "nn/pooling.h"
#include "quant/quantization_plan.h"

namespace reuse {
namespace ir {
namespace {

Network
mlp()
{
    Network net("mlp", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<ActivationLayer>(
        "RELU", ActivationKind::ReLU));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 4, 2));
    return net;
}

TEST(ShapeInferencePassTest, PropagatesShapesAlongChain)
{
    Network net = mlp();
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    ShapeInferencePass().run(graph, report);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(graph.node(0).inShape, Shape({8}));
    EXPECT_EQ(graph.node(0).outShape, Shape({4}));
    EXPECT_EQ(graph.node(1).outShape, Shape({4}));
    EXPECT_EQ(graph.node(2).outShape, Shape({2}));
    for (const Node &node : graph.nodes())
        EXPECT_TRUE(node.shapesValid);
}

TEST(ShapeInferencePassTest, EmptyNetworkIsSh001)
{
    Network net("empty", Shape({8}));
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    ShapeInferencePass().run(graph, report);
    EXPECT_TRUE(report.has(diag::kEmptyNetwork));
}

TEST(ShapeInferencePassTest, MismatchedChainIsSh002)
{
    Network net("broken", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 16, 2));
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    ShapeInferencePass().run(graph, report);
    EXPECT_TRUE(report.has(diag::kShapeMismatch));
    EXPECT_FALSE(graph.node(1).shapesValid);
}

TEST(ReuseSafetyPassTest, UnsafeLayerIsErrorByDefault)
{
    Network net("unsafe", Shape({4, 8, 8}));
    net.addLayer(std::make_unique<MaxPool2DLayer>("POOL", 2));
    QuantizationPlan plan(net);
    plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
    Graph graph = Graph::fromNetwork(net, plan);
    DiagnosticReport report;
    ReuseSafetyPass().run(graph, report);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.has(diag::kReuseOnUnsafeLayer));
    EXPECT_FALSE(graph.node(0).pinnedFullRecompute);
}

TEST(ReuseSafetyPassTest, PinModeRewritesUnsafeLayerToWarning)
{
    Network net("unsafe", Shape({4, 8, 8}));
    net.addLayer(std::make_unique<MaxPool2DLayer>("POOL", 2));
    QuantizationPlan plan(net);
    plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
    Graph graph = Graph::fromNetwork(net, plan);
    DiagnosticReport report;
    const PassResult result =
        ReuseSafetyPass(/*pin_unsafe=*/true).run(graph, report);
    EXPECT_EQ(result.rewrites, 1u);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_TRUE(report.has(diag::kReuseOnUnsafeLayer));
    EXPECT_TRUE(graph.node(0).pinnedFullRecompute);
    EXPECT_FALSE(graph.node(0).quant.enabled());
    // The finding notes the rewrite.
    bool noted = false;
    for (const Diagnostic &d : report.diagnostics())
        noted = noted ||
                d.message.find("pinned to full recompute") !=
                    std::string::npos;
    EXPECT_TRUE(noted);
}

TEST(ReuseSafetyPassTest, PlanSizeMismatchIsQp001)
{
    Network net = mlp();
    Network other("other", Shape({8}));
    other.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 4));
    Graph graph = Graph::fromNetwork(net, QuantizationPlan(other));
    DiagnosticReport report;
    ReuseSafetyPass().run(graph, report);
    EXPECT_TRUE(report.has(diag::kPlanSizeMismatch));
}

TEST(FuseActivationPassTest, FusesElementwiseActivationIntoProducer)
{
    Network net = mlp();
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    ShapeInferencePass().run(graph, report);
    const PassResult result = FuseActivationPass().run(graph, report);
    EXPECT_EQ(result.rewrites, 1u);

    const Node &fc1 = graph.node(0);
    const Node &relu = graph.node(1);
    EXPECT_EQ(fc1.fusedActivation, &net.layer(1));
    EXPECT_EQ(fc1.fusedActivationIndex, 1u);
    EXPECT_TRUE(relu.fusedAway);
    // The activation is spliced out of the edge lists entirely; a
    // half-linked node would read as a cycle in topoOrder.
    EXPECT_TRUE(relu.inputs.empty());
    EXPECT_TRUE(relu.outputs.empty());
    ASSERT_EQ(fc1.outputs.size(), 1u);
    EXPECT_EQ(fc1.outputs[0], 2u);
    ASSERT_EQ(graph.node(2).inputs.size(), 1u);
    EXPECT_EQ(graph.node(2).inputs[0], 0u);
    EXPECT_EQ(graph.topoOrder().size(), 3u);
}

TEST(FuseActivationPassTest, TrailingActivationMovesGraphOutput)
{
    Network net("tail", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 4));
    net.addLayer(std::make_unique<ActivationLayer>(
        "SM", ActivationKind::Softmax));
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    FuseActivationPass().run(graph, report);
    EXPECT_TRUE(graph.node(1).fusedAway);
    EXPECT_EQ(graph.output(), 0u);
}

TEST(FuseActivationPassTest, DoesNotFusePNorm)
{
    // PNormLayer also reports LayerKind::Activation but changes the
    // output shape; fusing it in place would corrupt the schedule.
    Network net("pnorm", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 8));
    net.addLayer(std::make_unique<PNormLayer>("PN", 2));
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    const PassResult result = FuseActivationPass().run(graph, report);
    EXPECT_EQ(result.rewrites, 0u);
    EXPECT_EQ(graph.node(0).fusedActivation, nullptr);
    EXPECT_FALSE(graph.node(1).fusedAway);
}

TEST(FuseActivationPassTest, SkipsRecurrentNetworks)
{
    Network net("rnn", Shape({8}));
    net.addLayer(std::make_unique<BiLstmLayer>("BLSTM", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 4));
    net.addLayer(std::make_unique<ActivationLayer>(
        "RELU", ActivationKind::ReLU));
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    const PassResult result = FuseActivationPass().run(graph, report);
    EXPECT_EQ(result.rewrites, 0u);
    EXPECT_FALSE(graph.node(2).fusedAway);
}

TEST(DeadNodeEliminationPassTest, MarksDisconnectedNodesDead)
{
    // Hand-built graph: a live chain A -> B plus a node C connected
    // to nothing — a disconnected layer a frontend failed to prune.
    FullyConnectedLayer fc("FC", 4, 4);
    Graph graph("dangling", Shape({4}));
    const NodeId a = graph.addNode(&fc, 0);
    const NodeId b = graph.addNode(&fc, 1);
    const NodeId c = graph.addNode(&fc, 2);
    graph.connect(a, b);
    graph.setOutput(b);

    DiagnosticReport report;
    const PassResult result =
        DeadNodeEliminationPass().run(graph, report);
    EXPECT_EQ(result.rewrites, 1u);
    EXPECT_FALSE(graph.node(a).dead);
    EXPECT_FALSE(graph.node(b).dead);
    EXPECT_TRUE(graph.node(c).dead);
}

TEST(DeadNodeEliminationPassTest, FusedNodesAreNotDoubleCounted)
{
    Network net = mlp();
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    FuseActivationPass().run(graph, report);
    const PassResult result =
        DeadNodeEliminationPass().run(graph, report);
    EXPECT_EQ(result.rewrites, 0u);
    EXPECT_FALSE(graph.node(1).dead);  // fusedAway, not dead
}

TEST(PassManagerTest, SkipsRewritePassesOnBrokenGraphs)
{
    Network net("broken", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 8, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 16, 2));
    Graph graph = Graph::fromNetwork(net);
    DiagnosticReport report;
    PassManager pm;
    pm.add(std::make_unique<ShapeInferencePass>());
    pm.add(std::make_unique<FuseActivationPass>());
    pm.add(std::make_unique<DeadNodeEliminationPass>());
    const auto records = pm.run(graph, report);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_TRUE(records[0].ran);
    EXPECT_FALSE(records[1].ran);
    EXPECT_FALSE(records[2].ran);
    EXPECT_TRUE(report.hasErrors());
}

} // namespace
} // namespace ir
} // namespace reuse
