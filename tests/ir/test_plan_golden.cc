/** @file Golden test of the --dump-plan schedule rendering.
 *
 *  Compares dumpWorkloadPlan() over the model zoo against the
 *  checked-in tools/golden_plans.txt.  On mismatch the failure
 *  message pinpoints the first differing line, format-lint style.
 *  Regenerate the golden after an intentional schedule change with:
 *      build/tools/validate_model --dump-plan > tools/golden_plans.txt
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/workload_setup.h"
#include "workloads/model_zoo.h"

namespace reuse {
namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line))
        lines.push_back(line);
    return lines;
}

TEST(PlanGoldenTest, DumpMatchesCheckedInGolden)
{
    const std::string path =
        REUSE_SOURCE_DIR "/tools/golden_plans.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream golden;
    golden << in.rdbuf();

    std::ostringstream actual;
    for (const std::string &name : modelZooNames())
        actual << dumpWorkloadPlan(name) << "\n";

    if (actual.str() == golden.str())
        return;

    const std::vector<std::string> want = splitLines(golden.str());
    const std::vector<std::string> got = splitLines(actual.str());
    size_t first = 0;
    while (first < want.size() && first < got.size() &&
           want[first] == got[first]) {
        ++first;
    }
    std::ostringstream diff;
    diff << "compiled plans diverge from " << path << " at line "
         << first + 1 << ":\n";
    diff << "  golden: "
         << (first < want.size() ? want[first] : "<end of file>")
         << "\n";
    diff << "  actual: "
         << (first < got.size() ? got[first] : "<end of output>")
         << "\n";
    diff << "regenerate with: build/tools/validate_model --dump-plan "
            "> tools/golden_plans.txt";
    FAIL() << diff.str();
}

} // namespace
} // namespace reuse
