/** @file Unit tests for range profiling. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace {

TEST(RangeProfiler, TracksMinMax)
{
    RangeProfiler p;
    EXPECT_FALSE(p.hasData());
    p.observe(Tensor(Shape({3}), std::vector<float>{-2.0f, 0.0f, 5.0f}));
    EXPECT_TRUE(p.hasData());
    EXPECT_FLOAT_EQ(p.rangeMin(), -2.0f);
    EXPECT_FLOAT_EQ(p.rangeMax(), 5.0f);
}

TEST(RangeProfiler, AccumulatesAcrossTensors)
{
    RangeProfiler p;
    p.observe(Tensor(Shape({2}), std::vector<float>{1.0f, 2.0f}));
    p.observe(Tensor(Shape({2}), std::vector<float>{-7.0f, 0.5f}));
    EXPECT_FLOAT_EQ(p.rangeMin(), -7.0f);
    EXPECT_FLOAT_EQ(p.rangeMax(), 2.0f);
}

TEST(RangeProfiler, ClippedRangeExcludesOutliers)
{
    RangeProfiler p;
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        p.observe(rng.gaussian(0.0f, 1.0f));
    p.observe(1000.0f);   // gross outlier
    const auto [lo, hi] = p.clippedRange(6.0);
    EXPECT_LT(hi, 100.0f);
    EXPECT_GT(hi, 3.0f);
    EXPECT_LT(lo, -3.0f);
}

TEST(RangeProfiler, ClippedRangeNeverEmpty)
{
    RangeProfiler p;
    for (int i = 0; i < 10; ++i)
        p.observe(1.0f);   // constant stream
    const auto [lo, hi] = p.clippedRange();
    EXPECT_LT(lo, hi);
}

TEST(ProfileNetworkRanges, CapturesPerLayerInputs)
{
    Rng rng(2);
    Network net("mlp", Shape({4}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 4, 8));
    net.addLayer(
        std::make_unique<ActivationLayer>("RELU", ActivationKind::ReLU));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 8, 2));
    initNetwork(net, rng);

    std::vector<Tensor> inputs;
    for (int i = 0; i < 5; ++i) {
        Tensor t(Shape({4}));
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        inputs.push_back(t);
    }
    const NetworkRanges ranges = profileNetworkRanges(net, inputs);
    ASSERT_EQ(ranges.layerInput.size(), 3u);
    EXPECT_TRUE(ranges.layerInput[0].hasData());
    EXPECT_TRUE(ranges.layerInput[2].hasData());
    // ReLU output feeds FC2, so FC2's profiled minimum is >= 0.
    EXPECT_GE(ranges.layerInput[2].rangeMin(), 0.0f);
    // Feed-forward layers have no recurrent ranges.
    EXPECT_FALSE(ranges.layerRecurrent[0].hasData());
}

TEST(ProfileNetworkRanges, RecurrentRangesForLstm)
{
    Rng rng(3);
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    initNetwork(net, rng);
    std::vector<Tensor> seq;
    for (int t = 0; t < 8; ++t) {
        Tensor x(Shape({5}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const NetworkRanges ranges = profileNetworkRanges(net, seq);
    EXPECT_TRUE(ranges.layerRecurrent[0].hasData());
    // Hidden outputs are bounded by the LSTM nonlinearity.
    EXPECT_GE(ranges.layerRecurrent[0].rangeMin(), -1.0f);
    EXPECT_LE(ranges.layerRecurrent[0].rangeMax(), 1.0f);
}

TEST(RangeProfilerDeath, NoDataPanics)
{
    RangeProfiler p;
    EXPECT_DEATH((void)p.rangeMin(), "no data");
}

} // namespace
} // namespace reuse
