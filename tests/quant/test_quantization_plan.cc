/** @file Unit tests for the per-layer quantization plan. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/quantization_plan.h"

namespace reuse {
namespace {

struct Fixture {
    Rng rng{7};
    Network net{"mlp", Shape({4})};
    NetworkRanges ranges;

    Fixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 4, 8));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 8, 3));
        initNetwork(net, rng);
        std::vector<Tensor> inputs;
        for (int i = 0; i < 6; ++i) {
            Tensor t(Shape({4}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            inputs.push_back(t);
        }
        ranges = profileNetworkRanges(net, inputs);
    }
};

TEST(QuantizationPlan, DefaultAllDisabled)
{
    Fixture f;
    QuantizationPlan plan(f.net);
    EXPECT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.enabledCount(), 0u);
    for (size_t i = 0; i < plan.size(); ++i)
        EXPECT_FALSE(plan.layer(i).enabled());
}

TEST(QuantizationPlan, MakePlanEnablesRequestedLayers)
{
    Fixture f;
    const QuantizationPlan plan = makePlan(f.net, f.ranges, 16, {2});
    EXPECT_TRUE(plan.layer(2).enabled());
    EXPECT_FALSE(plan.layer(0).enabled());
    EXPECT_EQ(plan.enabledCount(), 1u);
    EXPECT_EQ(plan.layer(2).input->clusters(), 16);
}

TEST(QuantizationPlan, QuantizerRangeFromProfile)
{
    Fixture f;
    const QuantizationPlan plan = makePlan(f.net, f.ranges, 16, {2});
    // FC2 sits after a ReLU, so its profiled range floor is >= 0.
    EXPECT_GE(plan.layer(2).input->rangeMin(), -1e-6f);
}

TEST(QuantizationPlan, NonReusableLayersSkippedWithWarning)
{
    Fixture f;
    const QuantizationPlan plan = makePlan(f.net, f.ranges, 16, {1});
    EXPECT_FALSE(plan.layer(1).enabled());
    EXPECT_EQ(plan.enabledCount(), 0u);
}

TEST(QuantizationPlan, AllReusableWithExclusions)
{
    Fixture f;
    const QuantizationPlan all =
        makePlanAllReusable(f.net, f.ranges, 16);
    EXPECT_EQ(all.enabledCount(), 2u);
    const QuantizationPlan excl =
        makePlanAllReusable(f.net, f.ranges, 16, {0});
    EXPECT_EQ(excl.enabledCount(), 1u);
    EXPECT_FALSE(excl.layer(0).enabled());
    EXPECT_TRUE(excl.layer(2).enabled());
}

TEST(QuantizationPlan, DisableClearsQuantizers)
{
    Fixture f;
    QuantizationPlan plan = makePlan(f.net, f.ranges, 16, {0, 2});
    plan.disable(0);
    EXPECT_FALSE(plan.layer(0).enabled());
    EXPECT_EQ(plan.enabledCount(), 1u);
}

TEST(QuantizationPlan, RecurrentLayersGetRecurrentQuantizer)
{
    Rng rng(9);
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    initNetwork(net, rng);
    std::vector<Tensor> seq;
    for (int t = 0; t < 6; ++t) {
        Tensor x(Shape({5}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const NetworkRanges ranges = profileNetworkRanges(net, seq);
    const QuantizationPlan plan = makePlan(net, ranges, 16, {0});
    ASSERT_TRUE(plan.layer(0).enabled());
    EXPECT_TRUE(plan.layer(0).recurrent.has_value());
}

} // namespace
} // namespace reuse
