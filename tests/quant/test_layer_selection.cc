/** @file Unit tests for the backwards layer-selection algorithm. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/layer_selection.h"

namespace reuse {
namespace {

struct Fixture {
    Rng rng{21};
    Network net{"mlp", Shape({8})};
    NetworkRanges ranges;

    Fixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 8, 128));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU1", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 128, 256));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU2", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC3", 256, 128));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC4", 128, 10));
        initNetwork(net, rng);
        std::vector<Tensor> inputs;
        for (int i = 0; i < 8; ++i) {
            Tensor t(Shape({8}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            inputs.push_back(t);
        }
        ranges = profileNetworkRanges(net, inputs);
    }
};

TEST(ReusableLayerIndices, FindsOnlyReusable)
{
    Fixture f;
    const auto idx = reusableLayerIndices(f.net);
    EXPECT_EQ(idx, (std::vector<size_t>{0, 2, 4, 5}));
}

TEST(LayerOutputNeurons, MatchesShapes)
{
    Fixture f;
    EXPECT_EQ(layerOutputNeurons(f.net, 0), 128);
    EXPECT_EQ(layerOutputNeurons(f.net, 5), 10);
}

TEST(SelectLayers, ZeroLossSelectsAll)
{
    Fixture f;
    LayerSelectionConfig cfg;
    cfg.minOutputNeurons = 64;
    cfg.maxAccuracyLossPct = 1.0;
    const auto result = selectLayersBackwards(
        f.net, f.ranges, cfg,
        [](const QuantizationPlan &) { return 0.0; });
    // FC4 (10 outputs) is skipped as tiny; everything else selected.
    EXPECT_EQ(result.selectedLayers, (std::vector<size_t>{0, 2, 4}));
    EXPECT_EQ(result.plan.enabledCount(), 3u);
}

TEST(SelectLayers, SkipsTinyTrailingLayers)
{
    Fixture f;
    LayerSelectionConfig cfg;
    cfg.minOutputNeurons = 64;
    const auto result = selectLayersBackwards(
        f.net, f.ranges, cfg,
        [](const QuantizationPlan &) { return 0.0; });
    for (size_t li : result.selectedLayers)
        EXPECT_NE(li, 5u);
}

TEST(SelectLayers, StopsAtBudgetViolation)
{
    Fixture f;
    LayerSelectionConfig cfg;
    cfg.minOutputNeurons = 64;
    cfg.maxAccuracyLossPct = 1.0;
    // Loss grows with the number of quantized layers: 0.4 per layer,
    // so two layers fit (0.8) but three (1.2) do not.
    const auto result = selectLayersBackwards(
        f.net, f.ranges, cfg, [](const QuantizationPlan &plan) {
            return 0.4 * static_cast<double>(plan.enabledCount());
        });
    EXPECT_EQ(result.selectedLayers.size(), 2u);
    // Selection extends from the back: FC3 (4) then FC2 (2).
    EXPECT_EQ(result.selectedLayers, (std::vector<size_t>{2, 4}));
    EXPECT_NEAR(result.accuracyLossPct, 0.8, 1e-12);
}

TEST(SelectLayers, FirstLayerOverBudgetSelectsNothing)
{
    Fixture f;
    LayerSelectionConfig cfg;
    cfg.maxAccuracyLossPct = 0.5;
    const auto result = selectLayersBackwards(
        f.net, f.ranges, cfg,
        [](const QuantizationPlan &) { return 10.0; });
    EXPECT_TRUE(result.selectedLayers.empty());
    EXPECT_EQ(result.plan.enabledCount(), 0u);
}

} // namespace
} // namespace reuse
