/** @file Unit tests for linear quantization (Eq. 9 of the paper). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "quant/linear_quantizer.h"

namespace reuse {
namespace {

TEST(LinearQuantizer, StepIsRangeOverClusters)
{
    LinearQuantizer q(16, -2.0f, 2.0f);
    EXPECT_FLOAT_EQ(q.step(), 0.25f);
    EXPECT_EQ(q.clusters(), 16);
}

TEST(LinearQuantizer, RoundsToNearestCentroid)
{
    LinearQuantizer q(4, -1.0f, 1.0f);   // step = 0.5
    EXPECT_FLOAT_EQ(q.quantize(0.0f), 0.0f);
    EXPECT_FLOAT_EQ(q.quantize(0.24f), 0.0f);
    EXPECT_FLOAT_EQ(q.quantize(0.26f), 0.5f);
    EXPECT_FLOAT_EQ(q.quantize(-0.74f), -0.5f);
    EXPECT_FLOAT_EQ(q.quantize(-0.76f), -1.0f);
}

TEST(LinearQuantizer, SaturatesOutsideRange)
{
    LinearQuantizer q(4, -1.0f, 1.0f);
    EXPECT_FLOAT_EQ(q.quantize(100.0f), 1.0f);
    EXPECT_FLOAT_EQ(q.quantize(-100.0f), -1.0f);
    EXPECT_EQ(q.index(100.0f), q.maxIndex());
    EXPECT_EQ(q.index(-100.0f), q.minIndex());
}

TEST(LinearQuantizer, QuantizationIsIdempotent)
{
    Rng rng(1);
    LinearQuantizer q(16, -3.0f, 3.0f);
    for (int i = 0; i < 200; ++i) {
        const float v = rng.uniform(-4.0f, 4.0f);
        const float once = q.quantize(v);
        EXPECT_FLOAT_EQ(q.quantize(once), once);
        EXPECT_EQ(q.index(once), q.index(v));
    }
}

TEST(LinearQuantizer, ErrorBoundedByHalfStep)
{
    Rng rng(2);
    LinearQuantizer q(32, -1.0f, 1.0f);
    for (int i = 0; i < 500; ++i) {
        const float v = rng.uniform(-1.0f, 1.0f);
        EXPECT_LE(std::fabs(q.quantize(v) - v), q.step() / 2 + 1e-6f);
    }
}

TEST(LinearQuantizer, CentroidIsIndexTimesStep)
{
    LinearQuantizer q(8, -2.0f, 2.0f);
    for (int32_t idx = q.minIndex(); idx <= q.maxIndex(); ++idx)
        EXPECT_FLOAT_EQ(q.centroid(idx),
                        static_cast<float>(idx) * q.step());
}

TEST(LinearQuantizer, AsymmetricRange)
{
    LinearQuantizer q(10, 0.0f, 5.0f);   // step 0.5
    EXPECT_FLOAT_EQ(q.step(), 0.5f);
    EXPECT_EQ(q.index(0.0f), 0);
    EXPECT_EQ(q.index(5.0f), 10);
    EXPECT_FLOAT_EQ(q.quantize(2.6f), 2.5f);
}

TEST(LinearQuantizer, TensorOverloads)
{
    LinearQuantizer q(4, -1.0f, 1.0f);
    Tensor t(Shape({3}), std::vector<float>{0.1f, 0.6f, -0.9f});
    const Tensor qt = q.quantize(t);
    EXPECT_FLOAT_EQ(qt[0], 0.0f);
    EXPECT_FLOAT_EQ(qt[1], 0.5f);
    EXPECT_FLOAT_EQ(qt[2], -1.0f);
    const auto idx = q.indices(t);
    EXPECT_EQ(idx[0], 0);
    EXPECT_EQ(idx[1], 1);
    EXPECT_EQ(idx[2], -2);
}

class QuantizerClusterSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizerClusterSweep, MoreClustersNeverIncreaseError)
{
    // Property: doubling the cluster count halves the step and cannot
    // increase the worst-case quantization error.
    const int clusters = GetParam();
    LinearQuantizer coarse(clusters, -1.0f, 1.0f);
    LinearQuantizer fine(clusters * 2, -1.0f, 1.0f);
    EXPECT_LT(fine.step(), coarse.step());
    Rng rng(3);
    double coarse_err = 0.0, fine_err = 0.0;
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-1.0f, 1.0f);
        coarse_err += std::fabs(coarse.quantize(v) - v);
        fine_err += std::fabs(fine.quantize(v) - v);
    }
    EXPECT_LT(fine_err, coarse_err);
}

TEST_P(QuantizerClusterSweep, IndexBitsCoverIndexCount)
{
    const int clusters = GetParam();
    LinearQuantizer q(clusters, -1.0f, 1.0f);
    EXPECT_GE(1 << q.indexBits(), q.indexCount());
    EXPECT_LT(1 << (q.indexBits() - 1), q.indexCount());
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, QuantizerClusterSweep,
                         ::testing::Values(8, 12, 16, 32));

TEST(LinearQuantizerDeath, EmptyRangePanics)
{
    EXPECT_DEATH(LinearQuantizer(16, 1.0f, 1.0f), "empty");
}

TEST(LinearQuantizerDeath, ZeroClustersPanics)
{
    EXPECT_DEATH(LinearQuantizer(0, -1.0f, 1.0f), "positive");
}

} // namespace
} // namespace reuse
