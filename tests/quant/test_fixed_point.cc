/** @file Unit tests for the 8-bit fixed-point path (Sec. VI-A). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/network.h"
#include "quant/fixed_point.h"

namespace reuse {
namespace {

TEST(FixedPointFormat, GridCoversAbsMax)
{
    const auto fmt = FixedPointFormat::forAbsMax(1.27f, 8);
    EXPECT_EQ(fmt.minInt(), -128);
    EXPECT_EQ(fmt.maxInt(), 127);
    EXPECT_NEAR(fmt.decode(fmt.maxInt()), 1.27f, 1e-5f);
}

TEST(FixedPointFormat, SnapRoundsAndSaturates)
{
    const auto fmt = FixedPointFormat::forAbsMax(1.27f, 8);
    EXPECT_NEAR(fmt.snap(0.005f), 0.01f, 1e-5f);
    EXPECT_NEAR(fmt.snap(100.0f), fmt.decode(127), 1e-5f);
    EXPECT_NEAR(fmt.snap(-100.0f), fmt.decode(-128), 1e-5f);
}

TEST(FixedPointFormat, EncodeDecodeRoundTrip)
{
    const auto fmt = FixedPointFormat::forAbsMax(2.0f, 8);
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const float v = rng.uniform(-2.0f, 2.0f);
        const int32_t code = fmt.encode(v);
        EXPECT_GE(code, fmt.minInt());
        EXPECT_LE(code, fmt.maxInt());
        EXPECT_LE(std::fabs(fmt.decode(code) - v),
                  fmt.scale / 2 + 1e-6f);
        EXPECT_EQ(fmt.encode(fmt.decode(code)), code);
    }
}

TEST(FixedPointFormat, ZeroAbsMaxIsSafe)
{
    const auto fmt = FixedPointFormat::forAbsMax(0.0f, 8);
    EXPECT_EQ(fmt.snap(0.0f), 0.0f);
}

TEST(QuantizeWeights, SnapsAllFcParams)
{
    Rng rng(2);
    Network net("mlp", Shape({8}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 4));
    initNetwork(net, rng);
    quantizeWeightsFixedPoint(net, 8);
    auto &fc = static_cast<FullyConnectedLayer &>(net.layer(0));
    // All weights lie on a 255-point grid: check each is an integer
    // multiple of the layer scale.
    float absmax = 0.0f;
    for (float w : fc.weights())
        absmax = std::max(absmax, std::fabs(w));
    const auto fmt = FixedPointFormat::forAbsMax(absmax, 8);
    for (float w : fc.weights()) {
        const float ratio = w / fmt.scale;
        EXPECT_NEAR(ratio, std::round(ratio), 1e-3f);
    }
}

TEST(QuantizeWeights, SmallPerturbationOfOutputs)
{
    Rng rng(3);
    Network net("mlp", Shape({16}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 16, 8));
    initNetwork(net, rng);
    Tensor in(Shape({16}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    const Tensor before = net.forward(in);
    quantizeWeightsFixedPoint(net, 8);
    const Tensor after = net.forward(in);
    for (int64_t i = 0; i < before.numel(); ++i)
        EXPECT_NEAR(before[i], after[i],
                    0.05f * std::max(1.0f, std::fabs(before[i])));
}

TEST(FixedPointInputQuantizer, Has256Clusters)
{
    RangeProfiler p;
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        p.observe(rng.gaussian(0.0f, 1.0f));
    const LinearQuantizer q = makeFixedPointInputQuantizer(p, 8);
    EXPECT_EQ(q.clusters(), 256);
    EXPECT_LT(q.step(), 0.1f);
}

} // namespace
} // namespace reuse
