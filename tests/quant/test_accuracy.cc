/** @file Unit tests for accuracy-degradation metrics. */

#include <gtest/gtest.h>

#include "quant/accuracy.h"

namespace reuse {
namespace {

Tensor
vec(std::vector<float> v)
{
    const int64_t n = static_cast<int64_t>(v.size());
    return Tensor(Shape({n}), std::move(v));
}

TEST(Accuracy, IdenticalStreamsScorePerfect)
{
    std::vector<Tensor> ref{vec({1, 2, 3}), vec({3, 2, 1})};
    const AccuracyReport r = compareOutputs(ref, ref);
    EXPECT_DOUBLE_EQ(r.top1Agreement, 1.0);
    EXPECT_DOUBLE_EQ(r.meanRelativeError, 0.0);
    EXPECT_DOUBLE_EQ(r.accuracyLossPct(), 0.0);
    EXPECT_EQ(r.executions, 2);
}

TEST(Accuracy, ArgmaxDisagreementCounted)
{
    std::vector<Tensor> ref{vec({1, 2}), vec({2, 1})};
    std::vector<Tensor> cand{vec({2, 1}), vec({2, 1})};
    const AccuracyReport r = compareOutputs(ref, cand);
    EXPECT_DOUBLE_EQ(r.top1Agreement, 0.5);
    EXPECT_DOUBLE_EQ(r.accuracyLossPct(), 50.0);
}

TEST(Accuracy, RelativeErrorComputed)
{
    std::vector<Tensor> ref{vec({3, 4})};         // norm 5
    std::vector<Tensor> cand{vec({3, 4 + 5})};    // distance 5
    const AccuracyReport r = compareOutputs(ref, cand);
    EXPECT_DOUBLE_EQ(r.meanRelativeError, 1.0);
    EXPECT_DOUBLE_EQ(r.maxRelativeError, 1.0);
}

TEST(Accuracy, MaxTracksWorstExecution)
{
    std::vector<Tensor> ref{vec({1, 0}), vec({1, 0})};
    std::vector<Tensor> cand{vec({1, 0}), vec({0, 1})};
    const AccuracyReport r = compareOutputs(ref, cand);
    EXPECT_GT(r.maxRelativeError, r.meanRelativeError - 1e-12);
}

TEST(Accuracy, EmptyStreamsArePerfect)
{
    const AccuracyReport r = compareOutputs({}, {});
    EXPECT_DOUBLE_EQ(r.top1Agreement, 1.0);
    EXPECT_EQ(r.executions, 0);
}

TEST(AccuracyDeath, LengthMismatchPanics)
{
    std::vector<Tensor> a{vec({1})};
    EXPECT_DEATH((void)compareOutputs(a, {}), "lengths differ");
}

} // namespace
} // namespace reuse
