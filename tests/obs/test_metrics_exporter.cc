/**
 * @file
 * Unit tests for the Prometheus/JSON metrics exposition: name
 * sanitization, EWMA folding across scrapes, and that both output
 * formats are well-formed (the JSON one via the repo's own parser).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "common/stats.h"
#include "obs/metrics_exporter.h"

namespace reuse {
namespace obs {
namespace {

TEST(MetricsExporter, PromNameSanitizesToMetricCharset)
{
    EXPECT_EQ(MetricsExporter::promName("serve.frames_submitted"),
              "serve_frames_submitted");
    EXPECT_EQ(MetricsExporter::promName("serve.model.demo-v2.layer0"),
              "serve_model_demo_v2_layer0");
    // A leading digit is not a valid metric-name start.
    EXPECT_EQ(MetricsExporter::promName("3dconv.macs"), "_3dconv_macs");
}

TEST(MetricsExporter, ScrapeFoldsTrackedGaugesIntoEwma)
{
    StatRegistry registry;
    registry.get("serve.model.m.layer0.similarity").set(0.8);
    registry.get("serve.frames_submitted").set(100.0);

    MetricsExporter exporter;
    EXPECT_EQ(exporter.scrapeCount(), 0u);
    exporter.scrape(registry);
    EXPECT_EQ(exporter.scrapeCount(), 1u);
    // First scrape seeds the EWMA with the raw value.
    EXPECT_DOUBLE_EQ(
        exporter.ewma("serve.model.m.layer0.similarity"), 0.8);
    // Non-suffix-matching counters are not tracked.
    EXPECT_DOUBLE_EQ(exporter.ewma("serve.frames_submitted", -1.0),
                     -1.0);

    registry.get("serve.model.m.layer0.similarity").set(0.4);
    exporter.scrape(registry);
    // alpha=0.25: 0.25*0.4 + 0.75*0.8 = 0.7
    EXPECT_NEAR(exporter.ewma("serve.model.m.layer0.similarity"), 0.7,
                1e-12);
}

TEST(MetricsExporter, CustomAlphaAndSuffixes)
{
    MetricsExporter::Config config;
    config.ewmaAlpha = 1.0;  // no smoothing
    config.ewmaSuffixes = {".queue_depth_p99"};
    MetricsExporter exporter(config);

    StatRegistry registry;
    registry.get("serve.queue_depth_p99").set(12.0);
    registry.get("serve.model.m.similarity").set(0.9);
    exporter.scrape(registry);
    registry.get("serve.queue_depth_p99").set(3.0);
    exporter.scrape(registry);
    EXPECT_DOUBLE_EQ(exporter.ewma("serve.queue_depth_p99"), 3.0);
    // The default suffixes were replaced.
    EXPECT_DOUBLE_EQ(exporter.ewma("serve.model.m.similarity", -1.0),
                     -1.0);
}

TEST(MetricsExporter, PrometheusTextExposesGaugesAndEwmaSeries)
{
    StatRegistry registry;
    registry.get("serve.frames_completed").set(42.0);
    registry.get("serve.model.m.layer2.reuse").set(0.75);

    MetricsExporter exporter;
    exporter.scrape(registry);
    const std::string text = exporter.prometheusText(registry);

    EXPECT_NE(text.find("# TYPE reuse_serve_frames_completed gauge\n"
                        "reuse_serve_frames_completed 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("reuse_serve_model_m_layer2_reuse 0.75\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE reuse_serve_model_m_layer2_reuse_ewma gauge"),
        std::string::npos);
    EXPECT_NE(text.find("reuse_serve_model_m_layer2_reuse_ewma 0.75\n"),
              std::string::npos);
}

TEST(MetricsExporter, JsonSnapshotParsesAndCarriesEverything)
{
    StatRegistry registry;
    registry.get("serve.frames_completed").set(7.0);
    registry.get("serve.model.m.layer0.occupancy").set(0.3);

    MetricsExporter exporter;
    exporter.scrape(registry);
    exporter.scrape(registry);
    const JsonParseResult r =
        parseJson(exporter.jsonSnapshot(registry));
    ASSERT_TRUE(r.ok) << r.error;
    const JsonValue &v = r.value;
    EXPECT_DOUBLE_EQ(
        v.at("counters").at("serve.frames_completed").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(
        v.at("ewma").at("serve.model.m.layer0.occupancy").asNumber(),
        0.3);
    EXPECT_EQ(v.at("scrapes").asInt(), 2);
}

} // namespace
} // namespace obs
} // namespace reuse
