/**
 * @file
 * Unit tests for the per-thread ring-buffer trace recorder: sampling
 * decisions, RAII scopes, ring wrap-around accounting and concurrent
 * snapshot-while-recording safety (the TSan job runs this suite).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/trace_recorder.h"

namespace reuse {
namespace obs {
namespace {

/** Resets the process-wide recorder around each test. */
class TraceRecorderTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        TraceRecorder::instance().clear();
        TraceRecorder::instance().setSampleEvery(1);
    }

    void TearDown() override
    {
        TraceRecorder::instance().setSampleEvery(0);
        TraceRecorder::instance().clear();
        TraceRecorder::instance().setRingCapacity(
            TraceRecorder::kDefaultRingCapacity);
    }
};

TEST_F(TraceRecorderTest, DisabledRecorderSamplesNothing)
{
    TraceRecorder &rec = TraceRecorder::instance();
    rec.setSampleEvery(0);
    EXPECT_FALSE(rec.enabled());
    EXPECT_FALSE(rec.sampleFrameTick());
    {
        FrameTraceScope frame(1, 2);
        EXPECT_FALSE(frame.active());
        TraceSpan span(SpanKind::LayerExec, 0);
        EXPECT_FALSE(span.active());
    }
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST_F(TraceRecorderTest, FrameScopeEmitsFrameAndNestedSpans)
{
    {
        FrameTraceScope frame(7, 42);
        ASSERT_TRUE(frame.active());
        TraceSpan span(SpanKind::LayerExec, 3);
        span.args(100, 10, 1000, 100, kFlagReuseEnabled);
    }
    const std::vector<TraceEvent> events =
        TraceRecorder::instance().snapshot();
    ASSERT_EQ(events.size(), 2u);
    // Inner span published first (destroyed first), FrameExec second.
    EXPECT_EQ(events[0].kind, SpanKind::LayerExec);
    EXPECT_EQ(events[0].layer, 3);
    EXPECT_EQ(events[0].a, 100);
    EXPECT_EQ(events[0].b, 10);
    EXPECT_EQ(events[0].flags, kFlagReuseEnabled);
    EXPECT_EQ(events[0].session, 7u);
    EXPECT_EQ(events[0].frame, 42u);
    EXPECT_EQ(events[1].kind, SpanKind::FrameExec);
    EXPECT_GE(events[1].durNs, events[0].durNs);
    EXPECT_LT(events[0].seq, events[1].seq);
}

TEST_F(TraceRecorderTest, NestedScopesKeepOuterIdentity)
{
    {
        FrameTraceScope outer(5, 9);
        ASSERT_TRUE(outer.active());
        {
            // The engine's own scope under the serving runtime: a
            // pass-through that must not re-decide or re-label.
            FrameTraceScope inner(0, kAutoFrame);
            EXPECT_TRUE(inner.active());
            TraceSpan span(SpanKind::LayerExec, 0);
        }
        EXPECT_TRUE(traceActive());
    }
    const std::vector<TraceEvent> events =
        TraceRecorder::instance().snapshot();
    // Inner scope emits no FrameExec of its own: one layer span plus
    // the outer frame span.
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].session, 5u);
    EXPECT_EQ(events[0].frame, 9u);
    EXPECT_EQ(events[1].kind, SpanKind::FrameExec);
    EXPECT_EQ(events[1].session, 5u);
}

TEST_F(TraceRecorderTest, SamplesEveryNthFrame)
{
    TraceRecorder &rec = TraceRecorder::instance();
    rec.setSampleEvery(4);
    int sampled = 0;
    for (int i = 0; i < 32; ++i) {
        FrameTraceScope frame(1, static_cast<uint64_t>(i));
        if (frame.active())
            ++sampled;
    }
    EXPECT_EQ(sampled, 8);
}

TEST_F(TraceRecorderTest, InstantsIgnoreFrameSampling)
{
    TraceRecorder &rec = TraceRecorder::instance();
    rec.setSampleEvery(1000000);  // effectively never sample a frame
    recordInstant(SpanKind::Eviction, -1, 4096, 0, 0, 0, 11, 0);
    const std::vector<TraceEvent> events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, SpanKind::Eviction);
    EXPECT_EQ(events[0].durNs, 0);
    EXPECT_EQ(events[0].a, 4096);
    EXPECT_EQ(events[0].session, 11u);
}

TEST_F(TraceRecorderTest, RingWrapDropsOldestAndCounts)
{
    TraceRecorder &rec = TraceRecorder::instance();
    rec.setRingCapacity(64);
    // Capacity applies to rings registered after the call: record
    // from a fresh thread.
    std::thread t([] {
        for (int i = 0; i < 200; ++i)
            recordInstant(SpanKind::DriftRefresh, -1, i);
    });
    t.join();
    const std::vector<TraceEvent> events = rec.snapshot();
    ASSERT_EQ(events.size(), 64u);
    EXPECT_EQ(rec.droppedEvents(), 200u - 64u);
    // The survivors are the newest 64, in publication order.
    EXPECT_EQ(events.front().a, 200 - 64);
    EXPECT_EQ(events.back().a, 199);
}

TEST_F(TraceRecorderTest, ClearEmptiesRingsAndDropCounter)
{
    recordInstant(SpanKind::Eviction);
    ASSERT_FALSE(TraceRecorder::instance().snapshot().empty());
    TraceRecorder::instance().clear();
    EXPECT_TRUE(TraceRecorder::instance().snapshot().empty());
    EXPECT_EQ(TraceRecorder::instance().droppedEvents(), 0u);
}

TEST_F(TraceRecorderTest, ParseSampleSpec)
{
    uint32_t n = 99;
    EXPECT_TRUE(TraceRecorder::parseSampleSpec("0", &n));
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(TraceRecorder::parseSampleSpec("16", &n));
    EXPECT_EQ(n, 16u);
    EXPECT_TRUE(TraceRecorder::parseSampleSpec("1/32", &n));
    EXPECT_EQ(n, 32u);
    EXPECT_FALSE(TraceRecorder::parseSampleSpec("", &n));
    EXPECT_FALSE(TraceRecorder::parseSampleSpec("abc", &n));
    EXPECT_FALSE(TraceRecorder::parseSampleSpec("2/3", &n));
    EXPECT_FALSE(TraceRecorder::parseSampleSpec("-4", &n));
}

TEST_F(TraceRecorderTest, SpanKindNamesAreStable)
{
    EXPECT_STREQ(spanKindName(SpanKind::LayerExec), "layer_exec");
    EXPECT_STREQ(spanKindName(SpanKind::QueueWait), "queue_wait");
    EXPECT_STREQ(spanKindName(SpanKind::Eviction), "eviction");
    EXPECT_TRUE(isInstantKind(SpanKind::Eviction));
    EXPECT_FALSE(isInstantKind(SpanKind::LayerExec));
}

TEST_F(TraceRecorderTest, ConcurrentWritersAndSnapshotReaders)
{
    TraceRecorder &rec = TraceRecorder::instance();
    rec.setRingCapacity(256);  // force continuous wrap-around
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&stop, w] {
            uint64_t frame = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                FrameTraceScope scope(static_cast<uint64_t>(w),
                                      frame++);
                TraceSpan span(SpanKind::LayerExec, w);
                span.args(10, 1, 100, 10);
            }
        });
    }
    // Readers race the wrapping writers; seqlock slots guarantee no
    // torn events — every snapshot event must be internally valid.
    for (int iter = 0; iter < 50; ++iter) {
        const std::vector<TraceEvent> events = rec.snapshot();
        uint64_t prev_seq = 0;
        for (const TraceEvent &ev : events) {
            EXPECT_GT(ev.seq, prev_seq);
            prev_seq = ev.seq;
            ASSERT_TRUE(ev.kind == SpanKind::LayerExec ||
                        ev.kind == SpanKind::FrameExec);
            if (ev.kind == SpanKind::LayerExec) {
                EXPECT_EQ(ev.a, 10);
                EXPECT_EQ(ev.c, 100);
            }
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : writers)
        t.join();
}

} // namespace
} // namespace obs
} // namespace reuse
