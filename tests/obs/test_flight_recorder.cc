/**
 * @file
 * Flight-recorder tests: dumpNow() writes a postmortem the offline
 * tools can parse, the single-dump guard holds, and the metrics
 * provider is embedded when registered.  The fatal-signal path itself
 * is exercised end to end by the CI crash leg (serve_throughput
 * --postmortem --crash-after); here we drive the same writer directly
 * so the tests stay in-process and deterministic.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/json.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/trace_recorder.h"

namespace reuse {
namespace obs {
namespace {

class FlightRecorderTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FlightRecorder::resetForTest();
        TraceRecorder::instance().clear();
        ExemplarRecorder::instance().clear();
    }

    void TearDown() override
    {
        FlightRecorder::resetForTest();
        ExemplarRecorder::Policy off;
        off.armed = false;
        ExemplarRecorder::instance().configure(off);
        ExemplarRecorder::instance().clear();
        TraceRecorder::instance().clear();
        std::remove(path().c_str());
    }

    static std::string path()
    {
        return ::testing::TempDir() + "postmortem_test.json";
    }

    static JsonValue parseDump()
    {
        const JsonParseResult r = parseJsonFile(path());
        EXPECT_TRUE(r.ok) << r.error;
        return r.value;
    }
};

TEST_F(FlightRecorderTest, DumpNowWritesParseablePostmortem)
{
    FlightRecorder::install(path());
    EXPECT_TRUE(FlightRecorder::installed());
    ASSERT_TRUE(FlightRecorder::dumpNow("unit test reason"));

    const JsonValue dump = parseDump();
    ASSERT_TRUE(dump.has("postmortem"));
    EXPECT_EQ(dump.at("postmortem").at("reason").asString(),
              "unit test reason");
    EXPECT_EQ(dump.at("postmortem").at("tool").asString(),
              "reuse_dnn");
    // The trace-exporter body is spliced in at top level, so
    // trace_report and latency_doctor find their usual sections.
    EXPECT_TRUE(dump.has("otherData"));
    EXPECT_TRUE(dump.has("traceEvents"));
    EXPECT_TRUE(dump.has("exemplars"));
    EXPECT_TRUE(dump.at("metrics").isNull());
}

TEST_F(FlightRecorderTest, SecondDumpIsRefused)
{
    FlightRecorder::install(path());
    ASSERT_TRUE(FlightRecorder::dumpNow("first"));
    EXPECT_FALSE(FlightRecorder::dumpNow("second"));
    // The file still holds the first dump's reason.
    EXPECT_EQ(parseDump().at("postmortem").at("reason").asString(),
              "first");
}

TEST_F(FlightRecorderTest, DumpWithoutInstallIsRefused)
{
    // resetForTest cleared the path: nothing to write to.
    EXPECT_FALSE(FlightRecorder::dumpNow("nowhere"));
}

TEST_F(FlightRecorderTest, MetricsProviderIsEmbedded)
{
    FlightRecorder::install(path());
    FlightRecorder::setMetricsProvider(
        [] { return std::string("{\"frames_total\":42}"); });
    ASSERT_TRUE(FlightRecorder::dumpNow("with metrics"));

    const JsonValue dump = parseDump();
    ASSERT_TRUE(dump.at("metrics").isObject());
    EXPECT_EQ(dump.at("metrics").at("frames_total").asInt(), 42);
}

TEST_F(FlightRecorderTest, CommittedExemplarsSurviveIntoTheDump)
{
    ExemplarRecorder::Policy pol;
    pol.armed = true;
    ExemplarRecorder::instance().configure(pol);

    ExemplarRecorder::FrameMeta meta;
    meta.session = 7;
    meta.frame = 3;
    meta.sloClass = 0;
    meta.enqueuedMicros = 0;
    meta.completedMicros = 50'000;
    meta.deadlineMicros = 10'000;  // miss -> commits
    ASSERT_NE(ExemplarRecorder::instance().finishFrame(meta), 0u);

    FlightRecorder::install(path());
    ASSERT_TRUE(FlightRecorder::dumpNow("exemplar carry"));

    const JsonValue dump = parseDump();
    const JsonValue::Array &exs = dump.at("exemplars").asArray();
    ASSERT_EQ(exs.size(), 1u);
    EXPECT_EQ(exs[0].at("session").asInt(), 7);
    EXPECT_EQ(exs[0].at("frame").asInt(), 3);
    EXPECT_EQ(exs[0].at("latency_us").asInt(), 50'000);
    EXPECT_EQ(dump.at("otherData").at("exemplarsCommitted").asInt(),
              1);
}

} // namespace
} // namespace obs
} // namespace reuse
