/**
 * @file
 * Unit tests for the sliding-window reservoir backing the serving
 * runtime's queue-depth quantile gauges.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/reservoir.h"

namespace reuse {
namespace obs {
namespace {

TEST(SlidingWindowReservoir, EmptyIsSafe)
{
    SlidingWindowReservoir r;
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.total(), 0u);
    EXPECT_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.max(), 0.0);
    EXPECT_EQ(r.quantile(0.5), 0.0);
}

TEST(SlidingWindowReservoir, MeanMaxQuantileOverWindow)
{
    SlidingWindowReservoir r(16);
    for (int i = 1; i <= 10; ++i)
        r.observe(double(i));
    EXPECT_EQ(r.size(), 10u);
    EXPECT_EQ(r.total(), 10u);
    EXPECT_DOUBLE_EQ(r.mean(), 5.5);
    EXPECT_DOUBLE_EQ(r.max(), 10.0);
    // Nearest-rank over {1..10}: rank floor(0.5 * 10) -> the 6th.
    EXPECT_DOUBLE_EQ(r.quantile(0.5), 6.0);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
}

TEST(SlidingWindowReservoir, WindowEvictsOldestAtCapacity)
{
    SlidingWindowReservoir r(4);
    for (int i = 1; i <= 8; ++i)
        r.observe(double(i));
    // Window holds {5,6,7,8}; total counts all observations.
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.total(), 8u);
    EXPECT_DOUBLE_EQ(r.mean(), 6.5);
    EXPECT_DOUBLE_EQ(r.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 8.0);
}

TEST(SlidingWindowReservoir, MaxTracksWindowNotHistory)
{
    SlidingWindowReservoir r(2);
    r.observe(100.0);
    r.observe(1.0);
    r.observe(2.0);  // evicts 100
    EXPECT_DOUBLE_EQ(r.max(), 2.0);
}

TEST(SlidingWindowReservoir, ResetClearsWindowAndTotal)
{
    SlidingWindowReservoir r(8);
    r.observe(3.0);
    r.observe(4.0);
    r.reset();
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.total(), 0u);
    EXPECT_EQ(r.quantile(0.99), 0.0);
}

TEST(SlidingWindowReservoir, ConcurrentObserversAndReaders)
{
    SlidingWindowReservoir r(128);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&r] {
            for (int i = 0; i < 1000; ++i)
                r.observe(double(i % 32));
        });
    }
    for (int i = 0; i < 100; ++i) {
        const double q = r.quantile(0.95);
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 31.0);
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(r.total(), 4000u);
    EXPECT_EQ(r.size(), 128u);
}

} // namespace
} // namespace obs
} // namespace reuse
