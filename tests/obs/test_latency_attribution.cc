/**
 * @file
 * Latency-attribution tests: the cause decomposition latency_doctor
 * is built on, driven over hand-written exemplar JSON so every bucket
 * boundary (wait variants, drift vs first-exec flags, the 0.5
 * recompute split, overhead/unattributed clamps) is pinned exactly —
 * plus a golden-file test over the checked-in exemplar trace with
 * fully hand-computed per-class totals.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "obs/latency_attribution.h"

namespace reuse {
namespace obs {
namespace {

JsonValue
parse(const std::string &text)
{
    const JsonParseResult r = parseJson(text);
    EXPECT_TRUE(r.ok) << r.error;
    return r.value;
}

double
bucket(const ExemplarAttribution &attr, AttrCause cause)
{
    return attr.causeUs[static_cast<size_t>(cause)];
}

double
bucket(const ClassAttribution &cls, AttrCause cause)
{
    return cls.causeUsTotal[static_cast<size_t>(cause)];
}

/** Minimal valid exemplar with `extra` fields and `spans` spliced in. */
std::string
exemplarJson(const std::string &extra, const std::string &spans)
{
    return "{\"session\":1,\"frame\":2,\"class\":\"interactive\","
           "\"causes\":[]," +
           extra + "\"latency_us\":1000,\"spans\":[" + spans + "]}";
}

TEST(LatencyAttribution, SteadyLayersSplitOnRecomputeRatio)
{
    // Layer 0 recomputed 80/100 MACs (> 0.5): low similarity.  Layer
    // 1 recomputed exactly half: still counted as reuse-mode time.
    ExemplarAttribution attr;
    std::string error;
    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson(
            "",
            "{\"name\":\"frame_exec\",\"dur\":700},"
            "{\"name\":\"layer_exec\",\"dur\":400,\"layer\":0,"
            "\"flags\":2,\"args\":{\"macs_full\":100,"
            "\"macs_performed\":80}},"
            "{\"name\":\"layer_exec\",\"dur\":300,\"layer\":1,"
            "\"flags\":2,\"args\":{\"macs_full\":100,"
            "\"macs_performed\":50}}")),
        &attr, &error))
        << error;
    EXPECT_DOUBLE_EQ(
        bucket(attr, AttrCause::LowSimilarityRecompute), 400.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::ReuseExec), 300.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::RuntimeOverhead), 0.0);
    // wall 1000 - frame_exec 700, no queue_wait span staged.
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::Unattributed), 300.0);
}

TEST(LatencyAttribution, WaitBucketNamesHowTheFrameTravelled)
{
    const std::string spans = "{\"name\":\"queue_wait\",\"dur\":900}";
    ExemplarAttribution attr;
    std::string error;

    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson("", spans)), &attr, &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::QueueWait), 900.0);

    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson("\"stolen\":true,", spans)), &attr,
        &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::StealDelay), 900.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::QueueWait), 0.0);

    // A migrated frame's wait is charged to the migration even when
    // it was also stolen afterwards: placement moved first.
    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson("\"stolen\":true,\"migrations\":1,",
                           spans)),
        &attr, &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::Migration), 900.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::StealDelay), 0.0);
}

TEST(LatencyAttribution, DriftFlagWinsOverFirstExecutionFlag)
{
    // flags 5 = first-execution | drift-refresh: the refresh is the
    // actionable cause (tune the drift policy, not warmup).
    ExemplarAttribution attr;
    std::string error;
    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson(
            "", "{\"name\":\"layer_exec\",\"dur\":500,\"flags\":5}")),
        &attr, &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::DriftRefresh), 500.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::FirstExec), 0.0);
}

TEST(LatencyAttribution, ColdRewarmSplitsFromPlainFirstExecution)
{
    const std::string spans =
        "{\"name\":\"layer_exec\",\"dur\":500,\"flags\":1}";
    ExemplarAttribution attr;
    std::string error;

    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson("", spans)), &attr, &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::FirstExec), 500.0);

    // Same span under a cold_rewarm cause: the recompute is the cost
    // of an eviction/corruption re-warm, not session warmup.
    ASSERT_TRUE(attributeOneExemplar(
        parse("{\"session\":1,\"frame\":2,\"class\":\"interactive\","
              "\"causes\":[\"deadline_miss\",\"cold_rewarm\"],"
              "\"latency_us\":1000,\"spans\":[" +
              spans + "]}"),
        &attr, &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::RewarmRecompute), 500.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::FirstExec), 0.0);
}

TEST(LatencyAttribution, OverheadAndUnattributedClampAtZero)
{
    // Layer spans exceeding frame_exec (clock skew) must not produce
    // negative overhead; spans covering more than wall must not
    // produce negative unattributed time.
    ExemplarAttribution attr;
    std::string error;
    ASSERT_TRUE(attributeOneExemplar(
        parse(exemplarJson(
            "",
            "{\"name\":\"queue_wait\",\"dur\":800},"
            "{\"name\":\"frame_exec\",\"dur\":400},"
            "{\"name\":\"layer_exec\",\"dur\":450,\"flags\":2}")),
        &attr, &error));
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::RuntimeOverhead), 0.0);
    EXPECT_DOUBLE_EQ(bucket(attr, AttrCause::Unattributed), 0.0);
    EXPECT_DOUBLE_EQ(attr.attributedFraction(), 1.0);
}

TEST(LatencyAttribution, ShedExemplarsCarryNoWallTime)
{
    ExemplarAttribution attr;
    std::string error;
    ASSERT_TRUE(attributeOneExemplar(
        parse("{\"session\":1,\"frame\":2,\"class\":\"interactive\","
              "\"causes\":[\"shed\"],\"latency_us\":12345,"
              "\"spans\":[{\"name\":\"frame_shed\",\"dur\":0}]}"),
        &attr, &error));
    EXPECT_TRUE(attr.shed);
    EXPECT_DOUBLE_EQ(attr.wallUs, 0.0);
    EXPECT_DOUBLE_EQ(attr.attributedFraction(), 1.0);
    for (size_t c = 0; c < kAttrCauseCount; ++c)
        EXPECT_DOUBLE_EQ(attr.causeUs[c], 0.0) << attrCauseName(
            static_cast<AttrCause>(c));
}

TEST(LatencyAttribution, MissingRequiredFieldIsAnError)
{
    ExemplarAttribution attr;
    std::string error;
    EXPECT_FALSE(attributeOneExemplar(
        parse("{\"session\":1,\"frame\":2,\"class\":\"interactive\","
              "\"causes\":[],\"latency_us\":10}"),
        &attr, &error));
    EXPECT_NE(error.find("spans"), std::string::npos) << error;
}

TEST(LatencyAttribution, LegacyTraceWithoutExemplarsIsRejected)
{
    AttributionReport report;
    std::string error;
    EXPECT_FALSE(attributeExemplars(
        parse("{\"otherData\":{\"sampleEvery\":1},"
              "\"traceEvents\":[]}"),
        &report, &error));
    EXPECT_NE(error.find("armed capture"), std::string::npos)
        << error;
}

TEST(LatencyAttribution, PostmortemReasonIsSurfaced)
{
    AttributionReport report;
    std::string error;
    ASSERT_TRUE(attributeExemplars(
        parse("{\"postmortem\":{\"reason\":\"signal:SIGSEGV\","
              "\"tool\":\"reuse_dnn\"},\"exemplars\":[]}"),
        &report, &error))
        << error;
    EXPECT_TRUE(report.postmortem);
    EXPECT_EQ(report.reason, "signal:SIGSEGV");
    EXPECT_TRUE(report.exemplars.empty());
}

/**
 * The checked-in golden trace (also the latency_doctor CLI golden):
 * every per-class bucket below is hand-computed from the span
 * durations in tests/obs/data/exemplar_trace.json.
 */
TEST(LatencyAttribution, GoldenTraceMatchesHandComputedBuckets)
{
    const JsonParseResult doc = parseJsonFile(
        REUSE_SOURCE_DIR "/tests/obs/data/exemplar_trace.json");
    ASSERT_TRUE(doc.ok) << doc.error;

    AttributionReport report;
    std::string error;
    ASSERT_TRUE(attributeExemplars(doc.value, &report, &error))
        << error;
    EXPECT_FALSE(report.postmortem);
    EXPECT_EQ(report.committed, 4u);
    EXPECT_EQ(report.dropped, 0u);
    ASSERT_EQ(report.exemplars.size(), 4u);
    ASSERT_EQ(report.classes.size(), 2u);

    const ClassAttribution &inter = report.classes.at("interactive");
    EXPECT_EQ(inter.exemplars, 2);
    EXPECT_EQ(inter.shed, 1);
    EXPECT_EQ(inter.truncated, 0);
    EXPECT_DOUBLE_EQ(inter.wallUsTotal, 80'000.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::QueueWait), 45'000.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::StealDelay), 10'000.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::Migration), 0.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::DriftRefresh), 1'500.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::RewarmRecompute),
                     12'000.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::FirstExec), 0.0);
    EXPECT_DOUBLE_EQ(
        bucket(inter, AttrCause::LowSimilarityRecompute), 1'000.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::ReuseExec), 6'000.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::RuntimeOverhead),
                     2'500.0);
    EXPECT_DOUBLE_EQ(bucket(inter, AttrCause::Unattributed),
                     2'000.0);
    // All buckets must sum back to the class's exemplar wall time.
    double sum = 0.0;
    for (size_t c = 0; c < kAttrCauseCount; ++c)
        sum += inter.causeUsTotal[c];
    EXPECT_DOUBLE_EQ(sum, inter.wallUsTotal);
    // 2000/80000 unattributed: 97.5% explained — above the 95% CI
    // gate this same file is held to by tools.latency_doctor_golden.
    EXPECT_DOUBLE_EQ(inter.attributedFraction(), 0.975);

    const ClassAttribution &std_cls = report.classes.at("standard");
    EXPECT_EQ(std_cls.exemplars, 1);
    EXPECT_EQ(std_cls.shed, 0);
    EXPECT_DOUBLE_EQ(std_cls.wallUsTotal, 52'000.0);
    EXPECT_DOUBLE_EQ(bucket(std_cls, AttrCause::Migration),
                     20'000.0);
    EXPECT_DOUBLE_EQ(bucket(std_cls, AttrCause::FirstExec),
                     30'000.0);
    EXPECT_DOUBLE_EQ(bucket(std_cls, AttrCause::RuntimeOverhead),
                     0.0);
    EXPECT_DOUBLE_EQ(bucket(std_cls, AttrCause::Unattributed),
                     2'000.0);
}

} // namespace
} // namespace obs
} // namespace reuse
