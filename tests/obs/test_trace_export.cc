/**
 * @file
 * End-to-end trace tests: engine executions recorded by the tracer,
 * exported to Chrome trace-event JSON, parsed back with the repo's
 * JSON parser, validated against the checked-in schema, and reduced
 * to per-layer reuse numbers that must agree with the engine's own
 * ReuseStatsCollector — exactly at 1/1 sampling, within 1% sampled.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "obs/trace_aggregate.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace obs {
namespace {

/** MLP wide enough that per-frame similarity is statistically stable. */
struct TracedMlpFixture {
    Rng rng{71};
    Network net{"traced_mlp", Shape({32})};
    std::vector<Tensor> calib;
    NetworkRanges ranges;

    TracedMlpFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 32, 48));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 48, 16));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({32}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        ranges = profileNetworkRanges(net, calib);
    }

    QuantizationPlan plan(int clusters = 128)
    {
        return makePlan(net, ranges, clusters, {0, 2});
    }

    std::vector<Tensor> stream(size_t frames, float sigma)
    {
        std::vector<Tensor> s;
        Tensor x(Shape({32}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 32; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

class TraceExportTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        TraceRecorder::instance().clear();
        TraceRecorder::instance().setSampleEvery(1);
    }

    void TearDown() override
    {
        TraceRecorder::instance().setSampleEvery(0);
        TraceRecorder::instance().clear();
    }

    static JsonValue exportAndParse()
    {
        const JsonParseResult r =
            parseJson(TraceExporter::exportString());
        EXPECT_TRUE(r.ok) << r.error;
        return r.value;
    }
};

TEST_F(TraceExportTest, ExportedTraceValidatesAgainstCheckedInSchema)
{
    TracedMlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    for (const Tensor &in : f.stream(8, 0.05f))
        engine.execute(in);
    recordInstant(SpanKind::Eviction, -1, 1024, 2048, 0, 0, 3, 7);

    const JsonValue trace = exportAndParse();
    const JsonParseResult schema =
        parseJsonFile(REUSE_SOURCE_DIR "/tools/trace_schema.json");
    ASSERT_TRUE(schema.ok) << schema.error;

    std::string error;
    EXPECT_TRUE(validateTrace(trace, schema.value, &error)) << error;
    EXPECT_EQ(trace.at("otherData").at("sampleEvery").asInt(), 1);
    EXPECT_EQ(trace.at("otherData").at("droppedEvents").asInt(), 0);
}

TEST_F(TraceExportTest, LayerExecEventsCarryReuseArgs)
{
    TracedMlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    engine.execute(f.calib[0]);
    engine.execute(f.calib[0]);  // identical: full reuse

    const JsonValue trace = exportAndParse();
    const JsonValue::Array &events = trace.at("traceEvents").asArray();

    int steady_layer0 = 0;
    bool saw_frame_exec = false;
    for (const JsonValue &ev : events) {
        const std::string name = ev.at("name").asString();
        if (name == "frame_exec") {
            saw_frame_exec = true;
            EXPECT_EQ(ev.at("ph").asString(), "X");
            EXPECT_TRUE(ev.has("dur"));
        }
        if (name != "layer_exec")
            continue;
        const JsonValue &args = ev.at("args");
        if (args.at("layer").asInt() != 0 ||
            args.at("first").asInt() != 0)
            continue;
        ++steady_layer0;
        // Second identical frame: every input unchanged, no MACs.
        EXPECT_EQ(args.at("checked").asInt(), 32);
        EXPECT_EQ(args.at("changed").asInt(), 0);
        EXPECT_GT(args.at("macs_full").asInt(), 0);
        EXPECT_EQ(args.at("macs_performed").asInt(), 0);
        EXPECT_EQ(args.at("reuse").asInt(), 1);
    }
    EXPECT_EQ(steady_layer0, 1);
    EXPECT_TRUE(saw_frame_exec);
}

TEST_F(TraceExportTest, InstantEventsUseInstantPhase)
{
    recordInstant(SpanKind::Eviction, -1, 512, 4096, 0, 0, 9, 0);
    const JsonValue trace = exportAndParse();
    const JsonValue::Array &events = trace.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].at("name").asString(), "eviction");
    EXPECT_EQ(events[0].at("ph").asString(), "i");
    EXPECT_EQ(events[0].at("args").at("bytes").asInt(), 512);
    EXPECT_EQ(events[0].at("args").at("session").asInt(), 9);
}

TEST_F(TraceExportTest, FullSamplingMatchesEngineStatsExactly)
{
    TracedMlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    for (const Tensor &in : f.stream(48, 0.05f))
        engine.execute(in);

    TraceAggregate agg;
    std::string error;
    ASSERT_TRUE(aggregateTrace(exportAndParse(), &agg, &error))
        << error;
    EXPECT_EQ(agg.sampleEvery, 1u);

    const std::vector<LayerReuseStats> &layers =
        engine.stats().layers();
    for (const int li : {0, 2}) {
        ASSERT_TRUE(agg.layers.count(li)) << "layer " << li;
        const LayerTraceAgg &a = agg.layers.at(li);
        const LayerReuseStats &s = layers[size_t(li)];
        // At 1/1 sampling the trace carries every steady-state span:
        // the integer sums — and hence the ratios — match exactly.
        EXPECT_EQ(a.spans, s.executions);
        EXPECT_EQ(a.inputsChecked, s.inputsChecked);
        EXPECT_EQ(a.inputsChanged, s.inputsChanged);
        EXPECT_EQ(a.macsFull, s.macsFull);
        EXPECT_EQ(a.macsPerformed, s.macsPerformed);
        EXPECT_DOUBLE_EQ(a.similarity(), s.similarity());
        EXPECT_DOUBLE_EQ(a.computationReuse(), s.computationReuse());
    }
}

TEST_F(TraceExportTest, SampledTraceAgreesWithinOnePercent)
{
    TraceRecorder::instance().setSampleEvery(4);
    TracedMlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    for (const Tensor &in : f.stream(512, 0.05f))
        engine.execute(in);

    TraceAggregate agg;
    std::string error;
    ASSERT_TRUE(aggregateTrace(exportAndParse(), &agg, &error))
        << error;
    EXPECT_EQ(agg.sampleEvery, 4u);

    const std::vector<LayerReuseStats> &layers =
        engine.stats().layers();
    for (const int li : {0, 2}) {
        ASSERT_TRUE(agg.layers.count(li)) << "layer " << li;
        const LayerTraceAgg &a = agg.layers.at(li);
        const LayerReuseStats &s = layers[size_t(li)];
        // 128 of 512 steady frames sampled: the subset estimate must
        // sit within one point of the full-population metric.
        EXPECT_NEAR(a.similarity(), s.similarity(), 0.01);
        EXPECT_NEAR(a.computationReuse(), s.computationReuse(), 0.01);
    }
}

TEST_F(TraceExportTest, ExportFileWritesParseableJson)
{
    TracedMlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    engine.execute(f.calib[0]);

    const std::string path = testing::TempDir() + "trace_export.json";
    ASSERT_TRUE(TraceExporter::exportFile(path));
    const JsonParseResult r = parseJsonFile(path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.value.at("traceEvents").asArray().size(), 0u);
    std::remove(path.c_str());

    EXPECT_FALSE(TraceExporter::exportFile("/nonexistent/dir/t.json"));
}

} // namespace
} // namespace obs
} // namespace reuse
