/** @file Unit tests for the Shape descriptor. */

#include <gtest/gtest.h>

#include "tensor/shape.h"

namespace reuse {
namespace {

TEST(Shape, ScalarDefaults)
{
    Shape s;
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_EQ(s.numel(), 1);
    EXPECT_EQ(s.str(), "scalar");
}

TEST(Shape, RankAndDims)
{
    Shape s({3, 66, 200});
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.dim(0), 3);
    EXPECT_EQ(s.dim(1), 66);
    EXPECT_EQ(s.dim(2), 200);
    EXPECT_EQ(s.numel(), 3 * 66 * 200);
    EXPECT_EQ(s.str(), "3x66x200");
}

TEST(Shape, StridesAreRowMajor)
{
    Shape s({2, 3, 4});
    const auto strides = s.strides();
    ASSERT_EQ(strides.size(), 3u);
    EXPECT_EQ(strides[0], 12);
    EXPECT_EQ(strides[1], 4);
    EXPECT_EQ(strides[2], 1);
}

TEST(Shape, OffsetMatchesStrides)
{
    Shape s({2, 3, 4});
    EXPECT_EQ(s.offset({0, 0, 0}), 0);
    EXPECT_EQ(s.offset({1, 2, 3}), 12 + 8 + 3);
    EXPECT_EQ(s.offset({0, 1, 2}), 6);
}

TEST(Shape, OffsetCoversAllElementsUniquely)
{
    Shape s({3, 4});
    std::vector<bool> seen(static_cast<size_t>(s.numel()), false);
    for (int64_t i = 0; i < 3; ++i) {
        for (int64_t j = 0; j < 4; ++j) {
            const int64_t off = s.offset({i, j});
            ASSERT_GE(off, 0);
            ASSERT_LT(off, s.numel());
            EXPECT_FALSE(seen[static_cast<size_t>(off)]);
            seen[static_cast<size_t>(off)] = true;
        }
    }
}

TEST(Shape, EqualityComparesDims)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, VectorConstructor)
{
    std::vector<int64_t> dims{5, 6};
    Shape s(dims);
    EXPECT_EQ(s.numel(), 30);
}

TEST(ShapeDeath, OutOfRangeDimPanics)
{
    Shape s({2, 2});
    EXPECT_DEATH((void)s.dim(5), "out of range");
}

TEST(ShapeDeath, BadIndexPanics)
{
    Shape s({2, 2});
    EXPECT_DEATH((void)s.offset({2, 0}), "out of range");
}

} // namespace
} // namespace reuse
