/** @file Unit tests for elementwise tensor operations. */

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace reuse {
namespace {

Tensor
vec(std::vector<float> v)
{
    const int64_t n = static_cast<int64_t>(v.size());
    return Tensor(Shape({n}), std::move(v));
}

TEST(TensorOps, AddSubScale)
{
    const Tensor a = vec({1, 2, 3});
    const Tensor b = vec({4, 5, 6});
    const Tensor s = add(a, b);
    EXPECT_EQ(s[0], 5.0f);
    EXPECT_EQ(s[2], 9.0f);
    const Tensor d = sub(b, a);
    EXPECT_EQ(d[0], 3.0f);
    const Tensor m = scale(a, 2.0f);
    EXPECT_EQ(m[2], 6.0f);
}

TEST(TensorOps, EuclideanDistance)
{
    const Tensor a = vec({0, 0});
    const Tensor b = vec({3, 4});
    EXPECT_DOUBLE_EQ(euclideanDistance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(euclideanDistance(a, a), 0.0);
}

TEST(TensorOps, RelativeDifferenceDefinition)
{
    // Fig. 4 metric: ||cur - prev|| / ||prev||.
    const Tensor prev = vec({3, 4});       // norm 5
    const Tensor cur = vec({3, 4 + 5});    // distance 5
    EXPECT_DOUBLE_EQ(relativeDifference(cur, prev), 1.0);
}

TEST(TensorOps, RelativeDifferenceZeroPrev)
{
    const Tensor prev = vec({0, 0});
    const Tensor cur = vec({1, 1});
    EXPECT_DOUBLE_EQ(relativeDifference(cur, prev), 0.0);
}

TEST(TensorOps, MaxAbsDifference)
{
    const Tensor a = vec({1, -5, 2});
    const Tensor b = vec({1, 5, 2});
    EXPECT_DOUBLE_EQ(maxAbsDifference(a, b), 10.0);
}

TEST(TensorOps, ExactMatchFraction)
{
    const Tensor a = vec({1, 2, 3, 4});
    const Tensor b = vec({1, 2, 9, 4});
    EXPECT_DOUBLE_EQ(exactMatchFraction(a, b), 0.75);
    EXPECT_DOUBLE_EQ(exactMatchFraction(a, a), 1.0);
}

TEST(TensorOps, Axpy)
{
    const Tensor x = vec({1, 2});
    Tensor y = vec({10, 20});
    axpy(0.5f, x, y);
    EXPECT_EQ(y[0], 10.5f);
    EXPECT_EQ(y[1], 21.0f);
}

TEST(TensorOps, Mean)
{
    EXPECT_DOUBLE_EQ(mean(vec({1, 2, 3, 4})), 2.5);
}

TEST(TensorOpsDeath, ShapeMismatchPanics)
{
    const Tensor a = vec({1, 2});
    const Tensor b = vec({1, 2, 3});
    EXPECT_DEATH((void)add(a, b), "shape mismatch");
    EXPECT_DEATH((void)euclideanDistance(a, b), "shape mismatch");
}

} // namespace
} // namespace reuse
