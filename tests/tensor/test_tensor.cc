/** @file Unit tests for the dense float tensor. */

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace reuse {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape({2, 3}));
    EXPECT_EQ(t.numel(), 6);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t(Shape({4}), 2.5f);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, AdoptsData)
{
    Tensor t(Shape({3}), std::vector<float>{1, 2, 3});
    EXPECT_EQ(t[0], 1.0f);
    EXPECT_EQ(t[2], 3.0f);
}

TEST(Tensor, MultiIndexAccess)
{
    Tensor t(Shape({2, 3}));
    t.at({1, 2}) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
    EXPECT_EQ(t.at({1, 2}), 7.0f);
}

TEST(Tensor, FillAndZero)
{
    Tensor t(Shape({5}));
    t.fill(3.0f);
    EXPECT_EQ(t[4], 3.0f);
    t.zero();
    EXPECT_EQ(t[4], 0.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(Shape({2, 3}), std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped(Shape({3, 2}));
    EXPECT_EQ(r.shape(), Shape({3, 2}));
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_EQ(r[i], t[i]);
}

TEST(Tensor, ArgmaxFindsFirstLargest)
{
    Tensor t(Shape({5}), std::vector<float>{1, 5, 3, 5, 2});
    EXPECT_EQ(t.argmax(), 1);
}

TEST(Tensor, SumAndNorm)
{
    Tensor t(Shape({4}), std::vector<float>{3, 4, 0, 0});
    EXPECT_DOUBLE_EQ(t.sum(), 7.0);
    EXPECT_DOUBLE_EQ(t.norm(), 5.0);
}

TEST(Tensor, MinMax)
{
    Tensor t(Shape({4}), std::vector<float>{-2, 7, 0, 3});
    EXPECT_EQ(t.minValue(), -2.0f);
    EXPECT_EQ(t.maxValue(), 7.0f);
}

TEST(Tensor, DefaultIsScalar)
{
    Tensor t;
    EXPECT_EQ(t.numel(), 1);
    EXPECT_EQ(t[0], 0.0f);
}

TEST(TensorDeath, BadAtPanics)
{
    Tensor t(Shape({2}));
    EXPECT_DEATH((void)t.at(int64_t{5}), "out of range");
}

TEST(TensorDeath, ReshapeMismatchPanics)
{
    Tensor t(Shape({2, 3}));
    EXPECT_DEATH((void)t.reshaped(Shape({7})), "element count");
}

TEST(TensorDeath, DataSizeMismatchPanics)
{
    EXPECT_DEATH(Tensor(Shape({3}), std::vector<float>{1, 2}),
                 "data size");
}

} // namespace
} // namespace reuse
