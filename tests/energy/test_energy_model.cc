/** @file Unit tests for the energy model and breakdown. */

#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace reuse {
namespace {

SimEvents
someEvents()
{
    SimEvents ev;
    ev.cycles = 1000;
    ev.edramWeightBytes = 1 << 20;
    ev.dramWeightBytes = 1 << 18;
    ev.dramActivationBytes = 1 << 16;
    ev.ioReadBytes = 1 << 19;
    ev.ioWriteBytes = 1 << 19;
    ev.centroidBytes = 128;
    ev.ringBytes = 4096;
    ev.fpMul = 1 << 20;
    ev.fpAdd = 1 << 20;
    ev.quantOps = 1 << 12;
    ev.cmpOps = 1 << 12;
    return ev;
}

TEST(EnergyModel, BreakdownSumsToTotal)
{
    const EnergyTable table;
    const auto e = computeEnergy(someEvents(), 1e-3, table);
    double sum = 0.0;
    for (const auto &[name, joules] : e.named())
        sum += joules;
    EXPECT_NEAR(sum, e.total(), 1e-15);
    EXPECT_EQ(e.named().size(), 6u);
}

TEST(EnergyModel, AllComponentsPositiveForMixedEvents)
{
    const EnergyTable table;
    const auto e = computeEnergy(someEvents(), 1e-3, table);
    EXPECT_GT(e.weightsBuffer, 0.0);
    EXPECT_GT(e.ioBuffer, 0.0);
    EXPECT_GT(e.computeEngine, 0.0);
    EXPECT_GT(e.mainMemory, 0.0);
    EXPECT_GT(e.interconnect, 0.0);
    EXPECT_GT(e.staticEnergy, 0.0);
}

TEST(EnergyModel, ZeroEventsOnlyStatic)
{
    const EnergyTable table;
    const auto e = computeEnergy(SimEvents{}, 2e-3, table);
    EXPECT_EQ(e.weightsBuffer, 0.0);
    EXPECT_EQ(e.mainMemory, 0.0);
    EXPECT_NEAR(e.staticEnergy, table.totalStaticW() * 2e-3, 1e-15);
    EXPECT_NEAR(e.total(), e.staticEnergy, 1e-15);
}

TEST(EnergyModel, EnergyScalesLinearlyWithEvents)
{
    const EnergyTable table;
    SimEvents ev = someEvents();
    const auto e1 = computeEnergy(ev, 0.0, table);
    SimEvents ev2 = ev;
    ev2 += ev;
    const auto e2 = computeEnergy(ev2, 0.0, table);
    EXPECT_NEAR(e2.total(), 2.0 * e1.total(), 1e-12);
}

TEST(EnergyModel, DramDominatesPerByte)
{
    // A DRAM byte must cost more than an eDRAM byte, which must cost
    // more than an SRAM byte: the ordering the paper's savings hinge
    // on.
    const EnergyTable t;
    EXPECT_GT(t.dramPJPerByte, t.edramReadPJPerByte);
    EXPECT_GT(t.edramReadPJPerByte, t.sramPJPerByte);
    EXPECT_GT(t.sramPJPerByte, t.centroidPJPerByte);
}

TEST(EnergyModel, StaticEnergyGrowsWithTime)
{
    const EnergyTable table;
    const auto fast = computeEnergy(SimEvents{}, 1e-3, table);
    const auto slow = computeEnergy(SimEvents{}, 2e-3, table);
    EXPECT_GT(slow.staticEnergy, fast.staticEnergy);
}

TEST(EnergyModel, EnergyDelayProduct)
{
    const EnergyTable table;
    const auto e = computeEnergy(someEvents(), 1e-3, table);
    EXPECT_NEAR(energyDelay(e, 1e-3), e.total() * 1e-3, 1e-18);
}

TEST(EnergyModel, FixedPointTableIsCheaper)
{
    const EnergyTable fp32;
    const EnergyTable fp8 = EnergyTable::fixedPoint8();
    EXPECT_LT(fp8.fpMulPJ, fp32.fpMulPJ);
    EXPECT_LT(fp8.fpAddPJ, fp32.fpAddPJ);
    EXPECT_LT(fp8.ceStaticW, fp32.ceStaticW);
}

TEST(EnergyModel, SimResultOverload)
{
    SimResult result;
    result.totals = someEvents();
    result.seconds = 1e-3;
    const auto a = computeEnergy(result);
    const auto b = computeEnergy(result.totals, result.seconds,
                                 EnergyTable{});
    EXPECT_DOUBLE_EQ(a.total(), b.total());
}

} // namespace
} // namespace reuse
