/** @file Unit tests for incremental conv execution (Sec. IV-C). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/conv_reuse.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

TEST(ConvReuse2D, FirstExecutionMatchesQuantizedForward)
{
    Rng rng(41);
    Conv2DLayer conv("conv", 2, 3, 3, 1);
    initGlorot(conv, rng);
    const Shape in_shape({2, 8, 8});
    LinearQuantizer quant(32, -3.0f, 3.0f);
    ConvReuseState state(conv, in_shape, quant);

    Tensor in(in_shape);
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    const Tensor out = state.execute(in, rec);
    EXPECT_TRUE(rec.firstExecution);
    EXPECT_EQ(rec.kind, LayerKind::Conv2D);
    EXPECT_EQ(rec.kernelExtent, 3);
    const Tensor want = conv.forward(quant.quantize(in));
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_NEAR(out[i], want[i], 1e-4f);
}

TEST(ConvReuse2D, IdenticalInputIsFullyReused)
{
    Rng rng(42);
    Conv2DLayer conv("conv", 2, 3, 3, 1);
    initGlorot(conv, rng);
    const Shape in_shape({2, 8, 8});
    LinearQuantizer quant(32, -3.0f, 3.0f);
    ConvReuseState state(conv, in_shape, quant);
    Tensor in(in_shape);
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    state.execute(in, rec);
    state.execute(in, rec);
    EXPECT_EQ(rec.inputsChanged, 0);
    EXPECT_EQ(rec.macsPerformed, 0);
}

TEST(ConvReuse2D, MatchesFromScratchOverStream)
{
    Rng rng(43);
    Conv2DLayer conv("conv", 3, 4, 5, 2);
    initGlorot(conv, rng);
    const Shape in_shape({3, 13, 17});
    LinearQuantizer quant(32, -3.0f, 3.0f);
    ConvReuseState state(conv, in_shape, quant);
    Tensor in(in_shape);
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    for (int frame = 0; frame < 8; ++frame) {
        for (int64_t i = 0; i < in.numel(); ++i)
            in[i] += rng.gaussian(0.0f, 0.1f);
        const Tensor out = state.execute(in, rec);
        const Tensor want = conv.forward(quant.quantize(in));
        for (int64_t i = 0; i < out.numel(); ++i)
            EXPECT_NEAR(out[i], want[i], 1e-3f)
                << "frame " << frame << " elem " << i;
    }
}

TEST(ConvReuse2D, PartialChangeCountsAffectedMacs)
{
    Rng rng(44);
    Conv2DLayer conv("conv", 1, 2, 3, 1);
    initGlorot(conv, rng);
    const Shape in_shape({1, 10, 10});
    LinearQuantizer quant(16, -2.0f, 2.0f);
    ConvReuseState state(conv, in_shape, quant);
    Tensor in(in_shape, 0.0f);
    LayerExecRecord rec;
    state.execute(in, rec);

    Tensor in2 = in;
    in2.at({0, 5, 5}) = 1.0f;   // one interior pixel changes
    state.execute(in2, rec);
    EXPECT_EQ(rec.inputsChanged, 1);
    EXPECT_EQ(rec.macsPerformed,
              conv.affectedOutputs(in_shape, 5, 5));
    // Interior pixel of a 3x3 stride-1 conv touches 9 positions x 2
    // filters.
    EXPECT_EQ(rec.macsPerformed, 18);
}

TEST(ConvReuse3D, MatchesFromScratchOverStream)
{
    Rng rng(45);
    Conv3DLayer conv("conv", 2, 3, 3, 1);
    initGlorot(conv, rng);
    const Shape in_shape({2, 4, 6, 6});
    LinearQuantizer quant(32, -3.0f, 3.0f);
    ConvReuseState state(conv, in_shape, quant);
    Tensor in(in_shape);
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    for (int frame = 0; frame < 6; ++frame) {
        for (int64_t i = 0; i < in.numel(); ++i)
            in[i] += rng.gaussian(0.0f, 0.1f);
        const Tensor out = state.execute(in, rec);
        const Tensor want = conv.forward(quant.quantize(in));
        for (int64_t i = 0; i < out.numel(); ++i)
            EXPECT_NEAR(out[i], want[i], 1e-3f);
    }
}

TEST(ConvReuse3D, RecordsKindAndKernel)
{
    Rng rng(46);
    Conv3DLayer conv("conv", 1, 2, 3, 1);
    initGlorot(conv, rng);
    const Shape in_shape({1, 3, 5, 5});
    LinearQuantizer quant(16, -2.0f, 2.0f);
    ConvReuseState state(conv, in_shape, quant);
    Tensor in(in_shape, 0.5f);
    LayerExecRecord rec;
    state.execute(in, rec);
    EXPECT_EQ(rec.kind, LayerKind::Conv3D);
    EXPECT_EQ(rec.kernelExtent, 3);
    EXPECT_EQ(rec.inputsTotal, in.numel());
    EXPECT_EQ(rec.macsFull, conv.macCount(in_shape));
}

TEST(ConvReuse3D, StaticBackgroundMovingBlob)
{
    // Scenario mirroring the video workload: most voxels static, a
    // small moving block changes; reuse must be high and outputs
    // exact.
    Rng rng(47);
    Conv3DLayer conv("conv", 1, 2, 3, 1);
    initGlorot(conv, rng);
    const Shape in_shape({1, 4, 12, 12});
    LinearQuantizer quant(32, -1.0f, 1.0f);
    ConvReuseState state(conv, in_shape, quant);

    Tensor in(in_shape, 0.25f);
    LayerExecRecord rec;
    state.execute(in, rec);
    for (int frame = 1; frame < 5; ++frame) {
        Tensor cur(in_shape, 0.25f);
        // 2x2x2 blob at a frame-dependent position.
        for (int64_t z = 0; z < 2; ++z)
            for (int64_t y = 0; y < 2; ++y)
                for (int64_t x = 0; x < 2; ++x)
                    cur.at({0, z, y + frame, x + frame}) = 0.9f;
        const Tensor out = state.execute(cur, rec);
        EXPECT_GT(rec.similarity(), 0.9);
        const Tensor want = conv.forward(quant.quantize(cur));
        for (int64_t i = 0; i < out.numel(); ++i)
            EXPECT_NEAR(out[i], want[i], 1e-3f);
    }
}

TEST(ConvReuseDeath, ShapeMismatchPanics)
{
    Rng rng(48);
    Conv2DLayer conv("conv", 1, 1, 3, 1);
    initGlorot(conv, rng);
    LinearQuantizer quant(16, -1.0f, 1.0f);
    ConvReuseState state(conv, Shape({1, 8, 8}), quant);
    LayerExecRecord rec;
    EXPECT_DEATH((void)state.execute(Tensor(Shape({1, 9, 9})), rec),
                 "shape mismatch");
}

} // namespace
} // namespace reuse
