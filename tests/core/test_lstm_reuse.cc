/** @file Unit tests for incremental BiLSTM execution (Sec. IV-D). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/lstm_reuse.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

/** Fine quantizer so quantization error is negligible. */
LinearQuantizer
fineQuant()
{
    return LinearQuantizer(4096, -4.0f, 4.0f);
}

/** Paper-style 16-cluster quantizer. */
LinearQuantizer
coarseQuant(float lo = -4.0f, float hi = 4.0f)
{
    return LinearQuantizer(16, lo, hi);
}

std::vector<Tensor>
randomSequence(Rng &rng, int64_t dim, size_t len, float step_sigma)
{
    std::vector<Tensor> seq;
    Tensor x(Shape({dim}));
    rng.fillGaussian(x.data(), 0.0f, 1.0f);
    for (size_t t = 0; t < len; ++t) {
        for (int64_t i = 0; i < dim; ++i)
            x[i] += rng.gaussian(0.0f, step_sigma);
        seq.push_back(x);
    }
    return seq;
}

TEST(LstmCellReuse, FineQuantizationTracksReference)
{
    Rng rng(51);
    LstmCell cell(6, 5);
    initLstm(cell, rng);
    LstmCellReuseState state(cell, fineQuant(), fineQuant());

    LstmCell::State ref = cell.initialState();
    LayerExecRecord rec;
    const auto seq = randomSequence(rng, 6, 12, 0.3f);
    for (const Tensor &x : seq) {
        const auto h = state.step(x.data(), rec);
        ref = cell.step(x.data(), ref);
        for (size_t j = 0; j < h.size(); ++j)
            EXPECT_NEAR(h[j], ref.h[j], 2e-2f);
    }
}

TEST(LstmCellReuse, ConstantInputReusesEverythingEventually)
{
    Rng rng(52);
    LstmCell cell(4, 4);
    initLstm(cell, rng);
    LstmCellReuseState state(cell, coarseQuant(), coarseQuant(-1, 1));

    AlignedVector<float> x(4, 0.5f);
    LayerExecRecord rec{};
    // After the hidden state settles, both x and h comparisons hit.
    AlignedVector<float> h_prev;
    for (int t = 0; t < 60; ++t) {
        rec = LayerExecRecord{};
        h_prev = state.step(x, rec);
    }
    EXPECT_EQ(rec.inputsChanged, 0);
    EXPECT_EQ(rec.macsPerformed, 0);
}

TEST(LstmCellReuse, CountsXAndHChecks)
{
    Rng rng(53);
    LstmCell cell(7, 5);
    initLstm(cell, rng);
    LstmCellReuseState state(cell, coarseQuant(), coarseQuant(-1, 1));
    AlignedVector<float> x(7, 0.1f);
    LayerExecRecord rec{};
    state.step(x, rec);                   // first step: from scratch
    EXPECT_EQ(rec.inputsChecked, 0);
    rec = LayerExecRecord{};
    state.step(x, rec);                   // second step: checks x and h
    EXPECT_EQ(rec.inputsChecked, 7 + 5);
    EXPECT_EQ(rec.macsFull, cell.macCountPerStep());
}

TEST(LstmCellReuse, ResetRestartsFromScratch)
{
    Rng rng(54);
    LstmCell cell(3, 3);
    initLstm(cell, rng);
    LstmCellReuseState state(cell, coarseQuant(), coarseQuant(-1, 1));
    AlignedVector<float> x(3, 0.2f);
    LayerExecRecord rec{};
    state.step(x, rec);
    state.step(x, rec);
    state.reset();
    rec = LayerExecRecord{};
    state.step(x, rec);
    // From-scratch step performs every MAC and checks nothing.
    EXPECT_EQ(rec.inputsChecked, 0);
    EXPECT_EQ(rec.macsPerformed, cell.macCountPerStep());
}

TEST(BiLstmReuse, MatchesReferenceWithFineQuantization)
{
    Rng rng(55);
    BiLstmLayer layer("bilstm", 6, 4);
    initLstm(layer, rng);
    BiLstmReuseState state(layer, fineQuant(), fineQuant());

    const auto seq = randomSequence(rng, 6, 10, 0.3f);
    LayerExecRecord rec;
    const auto got = state.executeSequence(seq, rec);
    const auto want = layer.forwardSequence(seq);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t)
        for (int64_t j = 0; j < got[t].numel(); ++j)
            EXPECT_NEAR(got[t][j], want[t][j], 3e-2f)
                << "t=" << t << " j=" << j;
}

TEST(BiLstmReuse, SlowSequencesShowHighSimilarity)
{
    Rng rng(56);
    BiLstmLayer layer("bilstm", 8, 6);
    initLstm(layer, rng);
    BiLstmReuseState state(layer, coarseQuant(), coarseQuant(-1, 1));

    // Nearly constant sequence: high similarity expected.
    std::vector<Tensor> seq;
    Tensor x(Shape({8}));
    rng.fillGaussian(x.data(), 0.0f, 1.0f);
    for (int t = 0; t < 20; ++t) {
        Tensor step = x;
        for (int64_t i = 0; i < 8; ++i)
            step[i] += rng.gaussian(0.0f, 0.005f);
        seq.push_back(step);
    }
    LayerExecRecord rec;
    state.executeSequence(seq, rec);
    EXPECT_GT(rec.similarity(), 0.5);
    EXPECT_GT(rec.reuseFraction(), 0.5);
    EXPECT_EQ(rec.steps, 20);
}

TEST(BiLstmReuse, AggregatesBothDirections)
{
    Rng rng(57);
    BiLstmLayer layer("bilstm", 5, 4);
    initLstm(layer, rng);
    BiLstmReuseState state(layer, coarseQuant(), coarseQuant(-1, 1));
    const auto seq = randomSequence(rng, 5, 6, 0.1f);
    LayerExecRecord rec;
    state.executeSequence(seq, rec);
    // 6 steps x 2 directions x (5 x inputs + 4 h inputs).
    EXPECT_EQ(rec.inputsTotal, 6 * 2 * (5 + 4));
    EXPECT_EQ(rec.macsFull,
              6 * 2 * 4 * (5 * 4 + 4 * 4));
    // First step of each direction is from scratch, so checked counts
    // cover the remaining 5 steps per direction.
    EXPECT_EQ(rec.inputsChecked, 5 * 2 * (5 + 4));
}

TEST(BiLstmReuse, ResetBetweenSequences)
{
    Rng rng(58);
    BiLstmLayer layer("bilstm", 4, 3);
    initLstm(layer, rng);
    BiLstmReuseState state(layer, fineQuant(), fineQuant());
    const auto seq = randomSequence(rng, 4, 5, 0.2f);
    LayerExecRecord rec1;
    const auto out1 = state.executeSequence(seq, rec1);
    state.reset();
    LayerExecRecord rec2;
    const auto out2 = state.executeSequence(seq, rec2);
    // Identical sequence after reset gives identical outputs.
    for (size_t t = 0; t < out1.size(); ++t)
        for (int64_t j = 0; j < out1[t].numel(); ++j)
            EXPECT_FLOAT_EQ(out1[t][j], out2[t][j]);
}

} // namespace
} // namespace reuse
