/** @file Unit tests for the reuse statistics collector. */

#include <gtest/gtest.h>

#include "core/reuse_stats.h"

namespace reuse {
namespace {

LayerExecRecord
record(size_t li, bool enabled, bool first, int64_t checked,
       int64_t changed, int64_t full, int64_t performed)
{
    LayerExecRecord r;
    r.layerIndex = li;
    r.kind = LayerKind::FullyConnected;
    r.reuseEnabled = enabled;
    r.firstExecution = first;
    r.inputsChecked = checked;
    r.inputsChanged = changed;
    r.macsFull = full;
    r.macsPerformed = performed;
    return r;
}

TEST(LayerExecRecord, DerivedMetrics)
{
    const auto r = record(0, true, false, 100, 25, 1000, 250);
    EXPECT_DOUBLE_EQ(r.similarity(), 0.75);
    EXPECT_DOUBLE_EQ(r.reuseFraction(), 0.75);
}

TEST(LayerExecRecord, EmptyRecordIsSafe)
{
    const LayerExecRecord r;
    EXPECT_DOUBLE_EQ(r.similarity(), 0.0);
    EXPECT_DOUBLE_EQ(r.reuseFraction(), 0.0);
}

TEST(ReuseStatsCollector, FirstExecutionsExcludedFromSteadyState)
{
    ReuseStatsCollector c({"L0"});
    c.addTrace({record(0, true, true, 0, 0, 1000, 1000)});
    c.addTrace({record(0, true, false, 10, 2, 1000, 200)});
    const auto &s = c.layers()[0];
    EXPECT_EQ(s.firstExecutions, 1);
    EXPECT_EQ(s.executions, 1);
    EXPECT_EQ(s.macsFull, 1000);
    EXPECT_EQ(s.macsPerformed, 200);
    EXPECT_EQ(s.macsFullAll, 2000);
    EXPECT_EQ(s.macsPerformedAll, 1200);
    EXPECT_DOUBLE_EQ(s.similarity(), 0.8);
    EXPECT_DOUBLE_EQ(s.computationReuse(), 0.8);
}

TEST(ReuseStatsCollector, MeanSimilarityOverEnabledLayers)
{
    ReuseStatsCollector c({"A", "B", "C"});
    // A: 75% similar; B disabled; C: 25% similar.
    c.addTrace({record(0, true, false, 100, 25, 100, 25),
                record(1, false, false, 0, 0, 100, 100),
                record(2, true, false, 100, 75, 100, 75)});
    EXPECT_DOUBLE_EQ(c.meanSimilarity(), 0.5);
    EXPECT_DOUBLE_EQ(c.meanComputationReuse(), 0.5);
}

TEST(ReuseStatsCollector, NetworkReuseIsMacWeighted)
{
    ReuseStatsCollector c({"big", "small"});
    // Big layer 90% reuse, small layer 0% (disabled).
    c.addTrace({record(0, true, false, 10, 1, 900, 90),
                record(1, false, false, 0, 0, 100, 100)});
    EXPECT_NEAR(c.networkComputationReuse(),
                1.0 - (90.0 + 100.0) / 1000.0, 1e-12);
}

TEST(ReuseStatsCollector, ResetKeepsNames)
{
    ReuseStatsCollector c({"X"});
    c.addTrace({record(0, true, false, 10, 5, 10, 5)});
    c.reset();
    EXPECT_EQ(c.layers()[0].layerName, "X");
    EXPECT_EQ(c.layers()[0].executions, 0);
    EXPECT_EQ(c.layers()[0].macsFull, 0);
}

TEST(ReuseStatsCollector, GrowsForUnknownLayers)
{
    ReuseStatsCollector c;
    c.addTrace({record(3, true, false, 1, 0, 1, 0)});
    EXPECT_EQ(c.layers().size(), 4u);
}

TEST(ReuseStatsCollector, EmptyCollectorMeansZero)
{
    ReuseStatsCollector c({"A"});
    EXPECT_EQ(c.meanSimilarity(), 0.0);
    EXPECT_EQ(c.meanComputationReuse(), 0.0);
    EXPECT_EQ(c.networkComputationReuse(), 0.0);
}

} // namespace
} // namespace reuse
