/** @file Unit tests for the whole-network reuse engine. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace {

struct MlpFixture {
    Rng rng{61};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    NetworkRanges ranges;

    MlpFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        ranges = profileNetworkRanges(net, calib);
    }

    QuantizationPlan plan(int clusters = 512,
                          std::vector<size_t> layers = {0, 2})
    {
        return makePlan(net, ranges, clusters, layers);
    }

    std::vector<Tensor> stream(size_t frames, float sigma)
    {
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

TEST(ReuseEngine, FineQuantizationMatchesReference)
{
    // Small walk keeps inputs inside the calibrated quantizer range,
    // so with 4096 clusters the only divergence from the FP32
    // reference is negligible quantization noise.
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan(4096));
    for (const Tensor &in : f.stream(20, 0.02f)) {
        const Tensor got = engine.execute(in);
        const Tensor want = f.net.forward(in);
        for (int64_t j = 0; j < got.numel(); ++j)
            EXPECT_NEAR(got[j], want[j], 2e-2f);
    }
}

TEST(ReuseEngine, TraceCoversEveryLayer)
{
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    engine.execute(f.calib[0]);
    const ExecutionTrace &trace = engine.lastTrace();
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_TRUE(trace[0].reuseEnabled);
    EXPECT_FALSE(trace[1].reuseEnabled);
    EXPECT_TRUE(trace[2].reuseEnabled);
    EXPECT_TRUE(trace[0].firstExecution);
}

TEST(ReuseEngine, DisabledPlanIsPureFromScratch)
{
    MlpFixture f;
    ReuseEngine engine(f.net, QuantizationPlan(f.net));
    const Tensor in = f.calib[0];
    const Tensor got = engine.execute(in);
    const Tensor want = f.net.forward(in);
    for (int64_t j = 0; j < got.numel(); ++j)
        EXPECT_FLOAT_EQ(got[j], want[j]);
    for (const auto &rec : engine.lastTrace()) {
        EXPECT_FALSE(rec.reuseEnabled);
        EXPECT_EQ(rec.macsPerformed, rec.macsFull);
    }
}

TEST(ReuseEngine, SecondIdenticalFrameSkipsEnabledLayers)
{
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    engine.execute(f.calib[0]);
    engine.execute(f.calib[0]);
    const ExecutionTrace &trace = engine.lastTrace();
    EXPECT_EQ(trace[0].inputsChanged, 0);
    EXPECT_EQ(trace[0].macsPerformed, 0);
    // FC2's input is FC1's (unchanged) output through ReLU.
    EXPECT_EQ(trace[2].inputsChanged, 0);
}

TEST(ReuseEngine, StatsAccumulateAcrossFrames)
{
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan(16));
    for (const Tensor &in : f.stream(15, 0.05f))
        engine.execute(in);
    const auto &layers = engine.stats().layers();
    ASSERT_EQ(layers.size(), 3u);
    EXPECT_EQ(layers[0].executions + layers[0].firstExecutions, 15);
    EXPECT_GT(layers[0].similarity(), 0.0);
    EXPECT_EQ(layers[0].layerName, "FC1");
}

TEST(ReuseEngine, ResetStateForcesFromScratch)
{
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    engine.execute(f.calib[0]);
    engine.resetState();
    engine.execute(f.calib[0]);
    EXPECT_TRUE(engine.lastTrace()[0].firstExecution);
}

TEST(ReuseEngine, RefreshPeriodTriggersPeriodically)
{
    MlpFixture f;
    ReuseEngineConfig cfg;
    cfg.refreshPeriod = 3;
    ReuseEngine engine(f.net, f.plan(), cfg);
    int first_count = 0;
    for (int i = 0; i < 9; ++i) {
        engine.execute(f.calib[0]);
        first_count += engine.lastTrace()[0].firstExecution ? 1 : 0;
    }
    EXPECT_EQ(first_count, 3);   // frames 0, 3, 6
}

TEST(ReuseEngine, SequenceOfFramesMatchesPerFrameExecution)
{
    MlpFixture f;
    const auto frames = f.stream(5, 0.1f);
    ReuseEngine a(f.net, f.plan(64));
    ReuseEngine b(f.net, f.plan(64));
    const auto batch = a.executeSequence(frames);
    for (size_t i = 0; i < frames.size(); ++i) {
        const Tensor one = b.execute(frames[i]);
        for (int64_t j = 0; j < one.numel(); ++j)
            EXPECT_FLOAT_EQ(batch[i][j], one[j]);
    }
}

TEST(ReuseEngine, RecurrentNetworkRuns)
{
    Rng rng(62);
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 3));
    initNetwork(net, rng);

    std::vector<Tensor> seq;
    Tensor x(Shape({5}));
    rng.fillGaussian(x.data(), 0.0f, 1.0f);
    for (int t = 0; t < 8; ++t) {
        for (int64_t j = 0; j < 5; ++j)
            x[j] += rng.gaussian(0.0f, 0.05f);
        seq.push_back(x);
    }
    const NetworkRanges ranges = profileNetworkRanges(net, seq);
    const QuantizationPlan plan = makePlan(net, ranges, 4096, {0, 1});
    ReuseEngine engine(net, plan);
    const auto got = engine.executeSequence(seq);
    const auto want = net.forwardSequence(seq);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t)
        for (int64_t j = 0; j < got[t].numel(); ++j)
            EXPECT_NEAR(got[t][j], want[t][j], 5e-2f);

    const ExecutionTrace &trace = engine.lastTrace();
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].kind, LayerKind::BiLstm);
    EXPECT_EQ(trace[0].steps, 8);
    EXPECT_EQ(trace[1].steps, 8);
    EXPECT_TRUE(trace[1].reuseEnabled);
}

TEST(ReuseEngineDeath, ExecuteOnRecurrentPanics)
{
    Rng rng(63);
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    initNetwork(net, rng);
    ReuseEngine engine(net, QuantizationPlan(net));
    EXPECT_DEATH((void)engine.execute(Tensor(Shape({5}))),
                 "executeSequence");
}

} // namespace
} // namespace reuse
