/** @file Unit tests for incremental FC execution (Sec. IV-B). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/fc_reuse.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

struct Fixture {
    Rng rng{31};
    FullyConnectedLayer fc{"fc", 16, 12};
    LinearQuantizer quant{16, -3.0f, 3.0f};

    Fixture() { initGlorot(fc, rng); }

    Tensor randomInput()
    {
        Tensor t(Shape({16}));
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        return t;
    }
};

TEST(FcReuse, FirstExecutionIsFromScratchOnCentroids)
{
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    EXPECT_FALSE(state.hasPrev());
    LayerExecRecord rec;
    const Tensor in = f.randomInput();
    const Tensor out = state.execute(in, rec);
    EXPECT_TRUE(rec.firstExecution);
    EXPECT_TRUE(rec.reuseEnabled);
    EXPECT_EQ(rec.macsPerformed, rec.macsFull);
    EXPECT_EQ(rec.inputsChecked, 0);
    EXPECT_TRUE(state.hasPrev());

    const Tensor want = f.fc.forward(f.quant.quantize(in));
    for (int64_t o = 0; o < out.numel(); ++o)
        EXPECT_NEAR(out[o], want[o], 1e-5f);
}

TEST(FcReuse, IdenticalInputSkipsEverything)
{
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    LayerExecRecord rec;
    const Tensor in = f.randomInput();
    const Tensor first = state.execute(in, rec);
    const Tensor second = state.execute(in, rec);
    EXPECT_FALSE(rec.firstExecution);
    EXPECT_EQ(rec.inputsChanged, 0);
    EXPECT_EQ(rec.macsPerformed, 0);
    EXPECT_DOUBLE_EQ(rec.similarity(), 1.0);
    EXPECT_DOUBLE_EQ(rec.reuseFraction(), 1.0);
    for (int64_t o = 0; o < first.numel(); ++o)
        EXPECT_EQ(second[o], first[o]);
}

TEST(FcReuse, SubQuantizationNoiseIsInvisible)
{
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    LayerExecRecord rec;
    Tensor in = f.randomInput();
    // Keep inputs near centroids so tiny noise cannot flip indices.
    for (int64_t i = 0; i < in.numel(); ++i)
        in[i] = f.quant.quantize(in[i]);
    state.execute(in, rec);
    Tensor noisy = in;
    for (int64_t i = 0; i < noisy.numel(); ++i)
        noisy[i] += 0.1f * f.quant.step() *
                    (i % 2 == 0 ? 1.0f : -1.0f);
    state.execute(noisy, rec);
    EXPECT_EQ(rec.inputsChanged, 0);
}

TEST(FcReuse, MatchesFromScratchOverRandomStream)
{
    // The central invariant: reuse-based output equals a from-scratch
    // execution on the quantized input, for every frame of a stream.
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    LayerExecRecord rec;
    Tensor in = f.randomInput();
    for (int frame = 0; frame < 50; ++frame) {
        // Random walk keeps consecutive inputs correlated.
        for (int64_t i = 0; i < in.numel(); ++i)
            in[i] += f.rng.gaussian(0.0f, 0.15f);
        const Tensor out = state.execute(in, rec);
        const Tensor want = f.fc.forward(f.quant.quantize(in));
        for (int64_t o = 0; o < out.numel(); ++o)
            EXPECT_NEAR(out[o], want[o], 1e-4f)
                << "frame " << frame << " output " << o;
    }
}

TEST(FcReuse, CountsChangedInputsExactly)
{
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    LayerExecRecord rec;
    Tensor in(Shape({16}), 0.0f);
    state.execute(in, rec);
    // Move exactly three inputs by more than one step.
    Tensor in2 = in;
    in2[1] += 2.0f * f.quant.step();
    in2[7] -= 2.0f * f.quant.step();
    in2[15] += 2.0f * f.quant.step();
    state.execute(in2, rec);
    EXPECT_EQ(rec.inputsChanged, 3);
    EXPECT_EQ(rec.macsPerformed, 3 * f.fc.outputs());
    EXPECT_NEAR(rec.similarity(), 13.0 / 16.0, 1e-12);
}

TEST(FcReuse, ResetForcesFromScratch)
{
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    LayerExecRecord rec;
    state.execute(f.randomInput(), rec);
    state.reset();
    EXPECT_FALSE(state.hasPrev());
    state.execute(f.randomInput(), rec);
    EXPECT_TRUE(rec.firstExecution);
}

TEST(FcReuse, DriftStaysBoundedOverLongStream)
{
    // Incremental corrections accumulate FP error; over hundreds of
    // frames the divergence from from-scratch must stay tiny.
    Fixture f;
    FcReuseState state(f.fc, f.quant);
    LayerExecRecord rec;
    Tensor in = f.randomInput();
    double worst = 0.0;
    for (int frame = 0; frame < 400; ++frame) {
        for (int64_t i = 0; i < in.numel(); ++i)
            in[i] += f.rng.gaussian(0.0f, 0.1f);
        // Bound the walk so the quantizer range keeps making sense.
        for (int64_t i = 0; i < in.numel(); ++i)
            in[i] = std::clamp(in[i], -3.0f, 3.0f);
        const Tensor out = state.execute(in, rec);
        const Tensor want = f.fc.forward(f.quant.quantize(in));
        for (int64_t o = 0; o < out.numel(); ++o)
            worst = std::max(worst,
                             std::fabs(static_cast<double>(out[o]) -
                                       want[o]));
    }
    EXPECT_LT(worst, 1e-3);
}

class FcReuseShapeSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>>
{
};

TEST_P(FcReuseShapeSweep, InvariantHoldsForShape)
{
    const auto [n, m] = GetParam();
    Rng rng(100 + n + m);
    FullyConnectedLayer fc("fc", n, m);
    initGlorot(fc, rng);
    LinearQuantizer quant(16, -3.0f, 3.0f);
    FcReuseState state(fc, quant);
    LayerExecRecord rec;
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (int frame = 0; frame < 10; ++frame) {
        for (int64_t i = 0; i < n; ++i)
            in[i] += rng.gaussian(0.0f, 0.2f);
        const Tensor out = state.execute(in, rec);
        const Tensor want = fc.forward(quant.quantize(in));
        for (int64_t o = 0; o < m; ++o)
            EXPECT_NEAR(out[o], want[o], 1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FcReuseShapeSweep,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{1, 64},
                      std::pair<int64_t, int64_t>{64, 1},
                      std::pair<int64_t, int64_t>{33, 47},
                      std::pair<int64_t, int64_t>{128, 128}));

} // namespace
} // namespace reuse
