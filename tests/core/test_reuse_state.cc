/** @file Unit tests for the extracted per-stream ReuseState. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace {

struct StateFixture {
    Rng rng{71};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    NetworkRanges ranges;

    StateFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        ranges = profileNetworkRanges(net, calib);
    }

    QuantizationPlan plan(int clusters = 64)
    {
        return makePlan(net, ranges, clusters, {0, 2});
    }

    std::vector<Tensor> stream(size_t frames, float sigma = 0.05f)
    {
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

void
expectIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.numel(), b.numel());
    for (int64_t j = 0; j < a.numel(); ++j)
        EXPECT_FLOAT_EQ(a[j], b[j]);
}

TEST(ReuseState, ExternalStateMatchesLegacyApi)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    for (const Tensor &in : f.stream(12)) {
        const Tensor ext = engine.execute(state, in, trace);
        const Tensor legacy = engine.execute(in);
        expectIdentical(ext, legacy);
    }
}

TEST(ReuseState, FreshStateIsColdAndSmall)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());
    ReuseState state = engine.makeState();
    EXPECT_FALSE(state.warm());
    EXPECT_EQ(state.layerCount(), 3u);
    EXPECT_EQ(state.executionsSinceRefresh(), 0);

    ExecutionTrace trace;
    engine.execute(state, f.calib[0], trace);
    EXPECT_TRUE(state.warm());
    EXPECT_GT(state.memoryBytes(), 0);
    EXPECT_EQ(state.executionsSinceRefresh(), 1);
}

TEST(ReuseState, DistinctStatesAreIndependentStreams)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());
    const auto frames = f.stream(10);

    // Interleave two streams (same inputs, offset by one frame) over
    // one engine; each must behave exactly like a dedicated engine.
    ReuseState a = engine.makeState();
    ReuseState b = engine.makeState();
    ReuseEngine ref_a(f.net, f.plan());
    ReuseEngine ref_b(f.net, f.plan());
    ExecutionTrace trace;
    for (size_t i = 0; i + 1 < frames.size(); ++i) {
        const Tensor out_a = engine.execute(a, frames[i], trace);
        const Tensor out_b = engine.execute(b, frames[i + 1], trace);
        expectIdentical(out_a, ref_a.execute(frames[i]));
        expectIdentical(out_b, ref_b.execute(frames[i + 1]));
    }
}

TEST(ReuseState, CloneContinuesIdentically)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());
    const auto frames = f.stream(12);

    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    for (size_t i = 0; i < 6; ++i)
        engine.execute(state, frames[i], trace);

    ReuseState fork = state.clone();
    EXPECT_EQ(fork.executionsSinceRefresh(),
              state.executionsSinceRefresh());
    EXPECT_EQ(fork.memoryBytes(), state.memoryBytes());
    for (size_t i = 6; i < frames.size(); ++i) {
        const Tensor a = engine.execute(state, frames[i], trace);
        const Tensor b = engine.execute(fork, frames[i], trace);
        expectIdentical(a, b);
    }
}

TEST(ReuseState, ReleaseBuffersBehavesLikeReset)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());
    const auto frames = f.stream(12);

    ReuseState released = engine.makeState();
    ReuseState reset = engine.makeState();
    ExecutionTrace trace;
    for (size_t i = 0; i < 6; ++i) {
        engine.execute(released, frames[i], trace);
        engine.execute(reset, frames[i], trace);
    }
    const int64_t warm_bytes = released.memoryBytes();
    EXPECT_GT(warm_bytes, 0);

    released.releaseBuffers();
    reset.reset();
    EXPECT_FALSE(released.warm());
    EXPECT_FALSE(reset.warm());
    EXPECT_LT(released.memoryBytes(), warm_bytes);
    EXPECT_EQ(released.executionsSinceRefresh(), 0);

    // An evicted (released) stream must re-warm to the exact same
    // outputs as a merely reset stream: both run frame 6 from scratch.
    for (size_t i = 6; i < frames.size(); ++i) {
        const Tensor a = engine.execute(released, frames[i], trace);
        const Tensor b = engine.execute(reset, frames[i], trace);
        expectIdentical(a, b);
    }
    EXPECT_TRUE(released.warm());
    EXPECT_EQ(released.memoryBytes(), warm_bytes);
}

TEST(ReuseState, RefreshCountsPerState)
{
    StateFixture f;
    ReuseEngineConfig cfg;
    cfg.refreshPeriod = 3;
    ReuseEngine engine(f.net, f.plan(), cfg);

    ReuseState a = engine.makeState();
    ReuseState b = engine.makeState();
    ExecutionTrace trace;
    // Drive `a` twice as fast as `b`; refresh boundaries must follow
    // each state's own counter, not a shared engine counter.
    int a_first = 0;
    int b_first = 0;
    for (int i = 0; i < 6; ++i) {
        engine.execute(a, f.calib[0], trace);
        a_first += trace[0].firstExecution ? 1 : 0;
        engine.execute(a, f.calib[0], trace);
        a_first += trace[0].firstExecution ? 1 : 0;
        engine.execute(b, f.calib[0], trace);
        b_first += trace[0].firstExecution ? 1 : 0;
    }
    EXPECT_EQ(a_first, 4);  // executions 0, 3, 6, 9 of 12
    EXPECT_EQ(b_first, 2);  // executions 0, 3 of 6
}

TEST(ReuseState, MoveTransfersWarmth)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    engine.execute(state, f.calib[0], trace);
    const int64_t bytes = state.memoryBytes();

    ReuseState moved = std::move(state);
    EXPECT_TRUE(moved.warm());
    EXPECT_EQ(moved.memoryBytes(), bytes);
    const Tensor out = engine.execute(moved, f.calib[0], trace);
    EXPECT_EQ(trace[0].inputsChanged, 0);
    (void)out;
}

TEST(ReuseStateDeath, ForeignStatePanics)
{
    StateFixture f;
    ReuseEngine engine(f.net, f.plan());

    Rng rng(72);
    Network other("tiny", Shape({4}));
    other.addLayer(std::make_unique<FullyConnectedLayer>("FC", 4, 2));
    initNetwork(other, rng);
    ReuseEngine other_engine(other, QuantizationPlan(other));

    ReuseState wrong = other_engine.makeState();
    ExecutionTrace trace;
    EXPECT_DEATH((void)engine.execute(wrong, f.calib[0], trace),
                 "state");
}

} // namespace
} // namespace reuse
