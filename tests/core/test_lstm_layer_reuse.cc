/** @file Unit tests for reuse on unidirectional LSTM layers. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace {

std::vector<Tensor>
slowSequence(Rng &rng, int64_t dim, size_t len, float sigma)
{
    std::vector<Tensor> seq;
    Tensor x(Shape({dim}));
    rng.fillGaussian(x.data(), 0.0f, 1.0f);
    for (size_t t = 0; t < len; ++t) {
        for (int64_t i = 0; i < dim; ++i)
            x[i] += rng.gaussian(0.0f, sigma);
        seq.push_back(x);
    }
    return seq;
}

TEST(LstmLayerReuse, FineQuantizationTracksReference)
{
    Rng rng(211);
    LstmLayer layer("lstm", 6, 5);
    initLstm(layer.cell(), rng);
    LstmLayerReuseState state(layer,
                              LinearQuantizer(4096, -4.0f, 4.0f),
                              LinearQuantizer(4096, -1.0f, 1.0f));
    const auto seq = slowSequence(rng, 6, 10, 0.2f);
    LayerExecRecord rec;
    const auto got = state.executeSequence(seq, rec);
    const auto want = layer.forwardSequence(seq);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t)
        for (int64_t j = 0; j < got[t].numel(); ++j)
            EXPECT_NEAR(got[t][j], want[t][j], 3e-2f);
}

TEST(LstmLayerReuse, RecordAggregatesSteps)
{
    Rng rng(212);
    LstmLayer layer("lstm", 7, 4);
    initLstm(layer.cell(), rng);
    LstmLayerReuseState state(layer, LinearQuantizer(16, -4.0f, 4.0f),
                              LinearQuantizer(16, -1.0f, 1.0f));
    const auto seq = slowSequence(rng, 7, 8, 0.05f);
    LayerExecRecord rec;
    state.executeSequence(seq, rec);
    EXPECT_EQ(rec.kind, LayerKind::Lstm);
    EXPECT_EQ(rec.steps, 8);
    // 8 steps x (7 x-inputs + 4 h-inputs), one direction only.
    EXPECT_EQ(rec.inputsTotal, 8 * (7 + 4));
    EXPECT_EQ(rec.macsFull, 8 * layer.cell().macCountPerStep());
    // First step is from scratch: 7 checked steps remain.
    EXPECT_EQ(rec.inputsChecked, 7 * (7 + 4));
}

TEST(LstmLayerReuse, SlowSequencesShowReuse)
{
    Rng rng(213);
    LstmLayer layer("lstm", 10, 8);
    initLstm(layer.cell(), rng);
    LstmLayerReuseState state(layer, LinearQuantizer(16, -4.0f, 4.0f),
                              LinearQuantizer(16, -1.0f, 1.0f));
    const auto seq = slowSequence(rng, 10, 20, 0.004f);
    LayerExecRecord rec;
    state.executeSequence(seq, rec);
    EXPECT_GT(rec.similarity(), 0.5);
    EXPECT_GT(rec.reuseFraction(), 0.5);
}

TEST(LstmLayerReuse, EngineRunsUniLstmNetwork)
{
    Rng rng(214);
    Network net("rnn", Shape({8}));
    net.addLayer(std::make_unique<LstmLayer>("LSTM1", 8, 6));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 6, 3));
    initNetwork(net, rng);

    const auto seq = slowSequence(rng, 8, 10, 0.05f);
    const NetworkRanges ranges = profileNetworkRanges(net, seq);
    const QuantizationPlan plan = makePlan(net, ranges, 4096, {0, 1});
    ReuseEngine engine(net, plan);
    const auto got = engine.executeSequence(seq);
    const auto want = net.forwardSequence(seq);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t)
        for (int64_t j = 0; j < got[t].numel(); ++j)
            EXPECT_NEAR(got[t][j], want[t][j], 5e-2f);

    const ExecutionTrace &trace = engine.lastTrace();
    EXPECT_EQ(trace[0].kind, LayerKind::Lstm);
    EXPECT_TRUE(trace[0].reuseEnabled);
    EXPECT_EQ(trace[0].steps, 10);
}

TEST(LstmLayerReuse, ResetReproducesSequence)
{
    Rng rng(215);
    LstmLayer layer("lstm", 4, 3);
    initLstm(layer.cell(), rng);
    LstmLayerReuseState state(layer,
                              LinearQuantizer(4096, -4.0f, 4.0f),
                              LinearQuantizer(4096, -1.0f, 1.0f));
    const auto seq = slowSequence(rng, 4, 5, 0.1f);
    LayerExecRecord rec1;
    const auto out1 = state.executeSequence(seq, rec1);
    state.reset();
    LayerExecRecord rec2;
    const auto out2 = state.executeSequence(seq, rec2);
    for (size_t t = 0; t < out1.size(); ++t)
        for (int64_t j = 0; j < out1[t].numel(); ++j)
            EXPECT_FLOAT_EQ(out1[t][j], out2[t][j]);
}

} // namespace
} // namespace reuse
