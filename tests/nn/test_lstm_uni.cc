/** @file Unit tests for the unidirectional LSTM layer. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "nn/network.h"

namespace reuse {
namespace {

TEST(LstmLayer, ShapesAndFlags)
{
    LstmLayer layer("lstm", 10, 6);
    EXPECT_EQ(layer.kind(), LayerKind::Lstm);
    EXPECT_TRUE(layer.isRecurrent());
    EXPECT_TRUE(layer.isReusable());
    EXPECT_EQ(layer.outputShape(Shape({10})), Shape({6}));
    EXPECT_EQ(layer.paramCount(), layer.cell().paramCount());
    EXPECT_EQ(layer.macCount(Shape({10})),
              layer.cell().macCountPerStep());
    EXPECT_STREQ(layerKindName(layer.kind()), "LSTM");
}

TEST(LstmLayer, ForwardSequenceMatchesManualCellSteps)
{
    Rng rng(201);
    LstmLayer layer("lstm", 5, 4);
    initLstm(layer.cell(), rng);

    std::vector<Tensor> seq;
    for (int t = 0; t < 6; ++t) {
        Tensor x(Shape({5}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const auto outs = layer.forwardSequence(seq);
    ASSERT_EQ(outs.size(), seq.size());

    LstmCell::State state = layer.cell().initialState();
    for (size_t t = 0; t < seq.size(); ++t) {
        state = layer.cell().step(seq[t].data(), state);
        for (int64_t j = 0; j < 4; ++j)
            EXPECT_FLOAT_EQ(outs[t][j], state.h[static_cast<size_t>(j)]);
    }
}

TEST(LstmLayer, OutputsAreBounded)
{
    Rng rng(202);
    LstmLayer layer("lstm", 8, 6);
    initLstm(layer.cell(), rng);
    std::vector<Tensor> seq;
    for (int t = 0; t < 15; ++t) {
        Tensor x(Shape({8}));
        rng.fillGaussian(x.data(), 0.0f, 3.0f);
        seq.push_back(x);
    }
    for (const auto &out : layer.forwardSequence(seq)) {
        for (int64_t j = 0; j < out.numel(); ++j) {
            EXPECT_GT(out[j], -1.0f);
            EXPECT_LT(out[j], 1.0f);
        }
    }
}

TEST(LstmLayer, WorksInsideNetwork)
{
    Rng rng(203);
    Network net("deepspeech-ish", Shape({16}));
    net.addLayer(std::make_unique<LstmLayer>("LSTM1", 16, 12));
    net.addLayer(std::make_unique<LstmLayer>("LSTM2", 12, 12));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 12, 4));
    initNetwork(net, rng);
    EXPECT_TRUE(net.isRecurrent());
    EXPECT_EQ(net.outputShape(), Shape({4}));

    std::vector<Tensor> seq;
    for (int t = 0; t < 5; ++t) {
        Tensor x(Shape({16}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const auto outs = net.forwardSequence(seq);
    ASSERT_EQ(outs.size(), 5u);
    for (const auto &o : outs)
        EXPECT_EQ(o.shape(), Shape({4}));
}

TEST(LstmLayerDeath, SingleStepForwardPanics)
{
    LstmLayer layer("lstm", 3, 2);
    EXPECT_DEATH((void)layer.forward(Tensor(Shape({3}))),
                 "forwardSequence");
}

} // namespace
} // namespace reuse
