/** @file Unit tests for the fully-connected layer. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

TEST(FullyConnected, ComputesDotProductPlusBias)
{
    FullyConnectedLayer fc("fc", 3, 2);
    // out0 = 1*1 + 2*2 + 3*3 + 0.5 = 14.5; out1 = -1 -2 -3 - 0.5 = -6.5
    for (int64_t i = 0; i < 3; ++i) {
        fc.weight(i, 0) = static_cast<float>(i + 1);
        fc.weight(i, 1) = -1.0f;
    }
    fc.biases() = {0.5f, -0.5f};
    const Tensor in(Shape({3}), std::vector<float>{1, 2, 3});
    const Tensor out = fc.forward(in);
    EXPECT_FLOAT_EQ(out[0], 14.5f);
    EXPECT_FLOAT_EQ(out[1], -6.5f);
}

TEST(FullyConnected, WeightLayoutIsInputMajor)
{
    FullyConnectedLayer fc("fc", 2, 3);
    fc.weight(1, 2) = 7.0f;
    // w[i * M + o] with i=1, o=2, M=3 -> flat index 5.
    EXPECT_EQ(fc.weights()[5], 7.0f);
}

TEST(FullyConnected, ShapesAndCounts)
{
    FullyConnectedLayer fc("fc", 400, 2000);
    EXPECT_EQ(fc.kind(), LayerKind::FullyConnected);
    EXPECT_EQ(fc.outputShape(Shape({400})), Shape({2000}));
    EXPECT_EQ(fc.paramCount(), 400 * 2000 + 2000);
    EXPECT_EQ(fc.macCount(Shape({400})), 400 * 2000);
    EXPECT_TRUE(fc.isReusable());
}

TEST(FullyConnected, AcceptsAnyInputShapeWithRightNumel)
{
    FullyConnectedLayer fc("fc", 6, 2);
    const Tensor in(Shape({2, 3}), 1.0f);
    EXPECT_EQ(fc.outputShape(in.shape()), Shape({2}));
    const Tensor out = fc.forward(in);
    EXPECT_EQ(out.numel(), 2);
}

TEST(FullyConnected, ApplyDeltaMatchesRecompute)
{
    Rng rng(11);
    FullyConnectedLayer fc("fc", 8, 5);
    initGlorot(fc, rng);
    Tensor in(Shape({8}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    const Tensor base = fc.forward(in);

    // Change input 3 by +0.25 and correct incrementally.
    AlignedVector<float> corrected(base.data());
    fc.applyDelta(3, 0.25f, corrected);
    Tensor in2 = in;
    in2[3] += 0.25f;
    const Tensor ref = fc.forward(in2);
    for (int64_t o = 0; o < 5; ++o)
        EXPECT_NEAR(corrected[static_cast<size_t>(o)], ref[o], 1e-5f);
}

TEST(FullyConnected, ApplyDeltaZeroIsNoop)
{
    Rng rng(12);
    FullyConnectedLayer fc("fc", 4, 4);
    initGlorot(fc, rng);
    AlignedVector<float> out(4, 1.0f);
    fc.applyDelta(0, 0.0f, out);
    for (float v : out)
        EXPECT_EQ(v, 1.0f);
}

TEST(FullyConnected, SkipsZeroInputsInForward)
{
    // Functional check: zero inputs contribute nothing, so a vector
    // with zeros equals the same vector computed densely.
    FullyConnectedLayer fc("fc", 3, 2);
    Rng rng(13);
    initGlorot(fc, rng);
    const Tensor sparse(Shape({3}), std::vector<float>{0.0f, 2.0f, 0.0f});
    const Tensor out = fc.forward(sparse);
    Tensor expected(Shape({2}));
    for (int64_t o = 0; o < 2; ++o)
        expected[o] = fc.biases()[static_cast<size_t>(o)] +
                      2.0f * fc.weight(1, o);
    EXPECT_NEAR(out[0], expected[0], 1e-6f);
    EXPECT_NEAR(out[1], expected[1], 1e-6f);
}

TEST(FullyConnectedDeath, WrongInputSizePanics)
{
    FullyConnectedLayer fc("fc", 3, 2);
    const Tensor in(Shape({4}));
    EXPECT_DEATH((void)fc.forward(in), "expected");
}

TEST(FullyConnectedDeath, BadDeltaIndexPanics)
{
    FullyConnectedLayer fc("fc", 3, 2);
    AlignedVector<float> out(2, 0.0f);
    EXPECT_DEATH(fc.applyDelta(3, 1.0f, out), "out of range");
}

} // namespace
} // namespace reuse
