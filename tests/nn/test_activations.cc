/** @file Unit tests for activation and flatten layers. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"

namespace reuse {
namespace {

Tensor
vec(std::vector<float> v)
{
    const int64_t n = static_cast<int64_t>(v.size());
    return Tensor(Shape({n}), std::move(v));
}

TEST(Activation, ReLUClampsNegatives)
{
    ActivationLayer relu("relu", ActivationKind::ReLU);
    const Tensor out = relu.forward(vec({-1.0f, 0.0f, 2.5f}));
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[1], 0.0f);
    EXPECT_EQ(out[2], 2.5f);
}

TEST(Activation, SigmoidRange)
{
    ActivationLayer sig("sig", ActivationKind::Sigmoid);
    const Tensor out = sig.forward(vec({-100.0f, 0.0f, 100.0f}));
    EXPECT_NEAR(out[0], 0.0f, 1e-6f);
    EXPECT_FLOAT_EQ(out[1], 0.5f);
    EXPECT_NEAR(out[2], 1.0f, 1e-6f);
}

TEST(Activation, TanhMatchesStd)
{
    ActivationLayer t("tanh", ActivationKind::Tanh);
    const Tensor out = t.forward(vec({-1.0f, 0.5f}));
    EXPECT_FLOAT_EQ(out[0], std::tanh(-1.0f));
    EXPECT_FLOAT_EQ(out[1], std::tanh(0.5f));
}

TEST(Activation, AtanMatchesStd)
{
    ActivationLayer a("atan", ActivationKind::Atan);
    const Tensor out = a.forward(vec({2.0f}));
    EXPECT_FLOAT_EQ(out[0], std::atan(2.0f));
}

TEST(Activation, IdentityPassesThrough)
{
    ActivationLayer id("id", ActivationKind::Identity);
    const Tensor out = id.forward(vec({1.0f, -2.0f}));
    EXPECT_EQ(out[0], 1.0f);
    EXPECT_EQ(out[1], -2.0f);
}

TEST(Activation, SoftmaxSumsToOne)
{
    ActivationLayer sm("sm", ActivationKind::Softmax);
    const Tensor out = sm.forward(vec({1.0f, 2.0f, 3.0f}));
    double sum = 0.0;
    for (int64_t i = 0; i < 3; ++i) {
        EXPECT_GT(out[i], 0.0f);
        sum += out[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(out[2], out[1]);
    EXPECT_GT(out[1], out[0]);
}

TEST(Activation, SoftmaxStableForLargeInputs)
{
    ActivationLayer sm("sm", ActivationKind::Softmax);
    const Tensor out = sm.forward(vec({1000.0f, 1000.0f}));
    EXPECT_NEAR(out[0], 0.5f, 1e-6f);
    EXPECT_NEAR(out[1], 0.5f, 1e-6f);
}

TEST(Activation, PreservesShape)
{
    ActivationLayer relu("relu", ActivationKind::ReLU);
    const Tensor in(Shape({2, 3, 4}), -1.0f);
    EXPECT_EQ(relu.outputShape(in.shape()), in.shape());
    EXPECT_EQ(relu.forward(in).shape(), in.shape());
}

TEST(Activation, NotReusable)
{
    ActivationLayer relu("relu", ActivationKind::ReLU);
    EXPECT_FALSE(relu.isReusable());
    EXPECT_EQ(relu.paramCount(), 0);
}

TEST(Flatten, ProducesRank1)
{
    FlattenLayer flat("flat");
    const Tensor in(Shape({2, 3}), 1.5f);
    const Tensor out = flat.forward(in);
    EXPECT_EQ(out.shape(), Shape({6}));
    EXPECT_EQ(out[5], 1.5f);
}

TEST(ActivationKindName, AllNamed)
{
    EXPECT_STREQ(activationKindName(ActivationKind::ReLU), "relu");
    EXPECT_STREQ(activationKindName(ActivationKind::Softmax), "softmax");
    EXPECT_STREQ(activationKindName(ActivationKind::Atan), "atan");
}

} // namespace
} // namespace reuse
