/** @file Unit tests for the sequential network container. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "nn/network.h"

namespace reuse {
namespace {

std::unique_ptr<Network>
smallMlp(Rng &rng)
{
    auto net = std::make_unique<Network>("mlp", Shape({4}));
    net->addLayer(std::make_unique<FullyConnectedLayer>("FC1", 4, 6));
    net->addLayer(
        std::make_unique<ActivationLayer>("RELU", ActivationKind::ReLU));
    net->addLayer(std::make_unique<FullyConnectedLayer>("FC2", 6, 3));
    initNetwork(*net, rng);
    return net;
}

TEST(Network, LayerBookkeeping)
{
    Rng rng(1);
    auto net = smallMlp(rng);
    EXPECT_EQ(net->layerCount(), 3u);
    EXPECT_EQ(net->layer(0).name(), "FC1");
    EXPECT_FALSE(net->isRecurrent());
    EXPECT_EQ(net->outputShape(), Shape({3}));
}

TEST(Network, LayerInputShapesChain)
{
    Rng rng(1);
    auto net = smallMlp(rng);
    const auto shapes = net->layerInputShapes();
    ASSERT_EQ(shapes.size(), 3u);
    EXPECT_EQ(shapes[0], Shape({4}));
    EXPECT_EQ(shapes[1], Shape({6}));
    EXPECT_EQ(shapes[2], Shape({6}));
}

TEST(Network, ForwardChainsLayers)
{
    Rng rng(2);
    auto net = smallMlp(rng);
    Tensor in(Shape({4}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    const Tensor out = net->forward(in);
    // Manual chaining must agree.
    Tensor manual = net->layer(0).forward(in);
    manual = net->layer(1).forward(manual);
    manual = net->layer(2).forward(manual);
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_FLOAT_EQ(out[i], manual[i]);
}

TEST(Network, ForwardSequenceMapsForFeedForward)
{
    Rng rng(3);
    auto net = smallMlp(rng);
    std::vector<Tensor> inputs;
    for (int i = 0; i < 3; ++i) {
        Tensor t(Shape({4}));
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        inputs.push_back(t);
    }
    const auto outs = net->forwardSequence(inputs);
    ASSERT_EQ(outs.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        const Tensor direct = net->forward(inputs[i]);
        for (int64_t j = 0; j < direct.numel(); ++j)
            EXPECT_FLOAT_EQ(outs[i][j], direct[j]);
    }
}

TEST(Network, ParamAndMacTotals)
{
    Rng rng(4);
    auto net = smallMlp(rng);
    EXPECT_EQ(net->paramCount(), (4 * 6 + 6) + (6 * 3 + 3));
    EXPECT_EQ(net->macCountPerExecution(), 4 * 6 + 6 * 3);
    EXPECT_EQ(net->weightBytes(), net->paramCount() * 4);
}

TEST(Network, RecurrentDetection)
{
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 2));
    EXPECT_TRUE(net.isRecurrent());
    EXPECT_EQ(net.outputShape(), Shape({2}));
}

TEST(Network, RecurrentSequenceRuns)
{
    Rng rng(5);
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 8, 2));
    initNetwork(net, rng);
    std::vector<Tensor> seq;
    for (int t = 0; t < 6; ++t) {
        Tensor x(Shape({5}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const auto outs = net.forwardSequence(seq);
    ASSERT_EQ(outs.size(), 6u);
    for (const auto &o : outs)
        EXPECT_EQ(o.shape(), Shape({2}));
}

TEST(Network, SummaryMentionsNameAndLayers)
{
    Rng rng(6);
    auto net = smallMlp(rng);
    const std::string s = net->summary();
    EXPECT_NE(s.find("mlp"), std::string::npos);
    EXPECT_NE(s.find("3 layers"), std::string::npos);
}

TEST(NetworkDeath, ForwardOnRecurrentPanics)
{
    Network net("rnn", Shape({5}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 5, 4));
    EXPECT_DEATH((void)net.forward(Tensor(Shape({5}))),
                 "forwardSequence");
}

} // namespace
} // namespace reuse
