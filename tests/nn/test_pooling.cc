/** @file Unit tests for max-pooling layers. */

#include <gtest/gtest.h>

#include "nn/pooling.h"

namespace reuse {
namespace {

TEST(MaxPool2D, PicksWindowMaxima)
{
    MaxPool2DLayer pool("pool", 2);
    Tensor in(Shape({1, 2, 4}),
              std::vector<float>{1, 2, 3, 4,
                                 5, 6, 7, 8});
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out.shape(), Shape({1, 1, 2}));
    EXPECT_EQ(out[0], 6.0f);
    EXPECT_EQ(out[1], 8.0f);
}

TEST(MaxPool2D, PerChannelIndependence)
{
    MaxPool2DLayer pool("pool", 2);
    Tensor in(Shape({2, 2, 2}));
    in.at({0, 0, 0}) = 9.0f;
    in.at({1, 1, 1}) = -1.0f;
    in.at({1, 0, 0}) = -5.0f;
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out.at({0, 0, 0}), 9.0f);
    EXPECT_EQ(out.at({1, 0, 0}), 0.0f);
}

TEST(MaxPool2D, TruncatesPartialWindows)
{
    MaxPool2DLayer pool("pool", 2);
    EXPECT_EQ(pool.outputShape(Shape({1, 5, 7})), Shape({1, 2, 3}));
}

TEST(MaxPool3D, FloorModeShapes)
{
    MaxPool3DLayer pool("pool", 2, 2, false);
    EXPECT_EQ(pool.outputShape(Shape({64, 16, 56, 56})),
              Shape({64, 8, 28, 28}));
    EXPECT_EQ(pool.outputShape(Shape({512, 2, 7, 7})),
              Shape({512, 1, 3, 3}));
}

TEST(MaxPool3D, CeilModeShapes)
{
    MaxPool3DLayer pool("pool", 2, 2, true);
    // C3D pool5: 512x2x7x7 -> 512x1x4x4 (8192-wide FC1 input).
    EXPECT_EQ(pool.outputShape(Shape({512, 2, 7, 7})),
              Shape({512, 1, 4, 4}));
}

TEST(MaxPool3D, DepthPreservingPool)
{
    MaxPool3DLayer pool("pool", 1, 2, true);
    EXPECT_EQ(pool.outputShape(Shape({64, 16, 112, 112})),
              Shape({64, 16, 56, 56}));
}

TEST(MaxPool3D, ValuesInCeilMode)
{
    MaxPool3DLayer pool("pool", 2, 2, true);
    Tensor in(Shape({1, 1, 3, 3}));
    for (int64_t i = 0; i < 9; ++i)
        in[i] = static_cast<float>(i);
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
    EXPECT_EQ(out.at({0, 0, 0, 0}), 4.0f);  // max of 0,1,3,4
    EXPECT_EQ(out.at({0, 0, 0, 1}), 5.0f);  // partial col window
    EXPECT_EQ(out.at({0, 0, 1, 0}), 7.0f);  // partial row window
    EXPECT_EQ(out.at({0, 0, 1, 1}), 8.0f);  // single corner element
}

TEST(MaxPool3D, NegativeValuesHandled)
{
    MaxPool3DLayer pool("pool", 1, 2, false);
    Tensor in(Shape({1, 1, 2, 2}), -3.0f);
    in[1] = -1.0f;
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out[0], -1.0f);
}

TEST(PoolLayers, NotReusable)
{
    MaxPool2DLayer p2("p", 2);
    MaxPool3DLayer p3("p", 2, 2);
    EXPECT_FALSE(p2.isReusable());
    EXPECT_FALSE(p3.isReusable());
}

} // namespace
} // namespace reuse
