/** @file Unit tests for the group p-norm layer. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/pnorm.h"

namespace reuse {
namespace {

TEST(PNorm, ReducesByGroup)
{
    PNormLayer p("pnorm", 5);
    EXPECT_EQ(p.outputShape(Shape({2000})), Shape({400}));
}

TEST(PNorm, ComputesL2NormOfGroups)
{
    PNormLayer p("pnorm", 2);
    Tensor in(Shape({4}), std::vector<float>{3, 4, 0, -5});
    const Tensor out = p.forward(in);
    EXPECT_FLOAT_EQ(out[0], 5.0f);
    EXPECT_FLOAT_EQ(out[1], 5.0f);
}

TEST(PNorm, OutputIsNonNegative)
{
    PNormLayer p("pnorm", 3);
    Tensor in(Shape({6}), std::vector<float>{-1, -2, -3, -4, -5, -6});
    const Tensor out = p.forward(in);
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_GE(out[i], 0.0f);
}

TEST(PNorm, ZeroInputGivesZero)
{
    PNormLayer p("pnorm", 4);
    const Tensor out = p.forward(Tensor(Shape({8})));
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_EQ(out[i], 0.0f);
}

TEST(PNorm, GroupOfOneIsAbs)
{
    PNormLayer p("pnorm", 1);
    Tensor in(Shape({3}), std::vector<float>{-2, 0, 2});
    const Tensor out = p.forward(in);
    EXPECT_FLOAT_EQ(out[0], 2.0f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
    EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(PNorm, NotReusable)
{
    PNormLayer p("pnorm", 5);
    EXPECT_FALSE(p.isReusable());
    EXPECT_EQ(p.macCount(Shape({2000})), 0);
}

TEST(PNormDeath, IndivisibleSizePanics)
{
    PNormLayer p("pnorm", 3);
    EXPECT_DEATH((void)p.outputShape(Shape({10})), "divisible");
}

} // namespace
} // namespace reuse
