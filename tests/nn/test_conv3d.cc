/** @file Unit tests for the 3D convolutional layer. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/conv3d.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

/** Naive direct 3D convolution used as the reference. */
Tensor
naiveConv3d(const Conv3DLayer &layer, const Tensor &in)
{
    const Shape out_shape = layer.outputShape(in.shape());
    const int64_t d = in.shape().dim(1);
    const int64_t h = in.shape().dim(2);
    const int64_t w = in.shape().dim(3);
    const int64_t od = out_shape.dim(1);
    const int64_t oh = out_shape.dim(2);
    const int64_t ow = out_shape.dim(3);
    const int64_t k = layer.kernel();
    const int64_t pad = layer.pad();

    Tensor out(out_shape);
    for (int64_t co = 0; co < layer.outChannels(); ++co) {
        for (int64_t oz = 0; oz < od; ++oz) {
            for (int64_t oy = 0; oy < oh; ++oy) {
                for (int64_t ox = 0; ox < ow; ++ox) {
                    double acc =
                        layer.biases()[static_cast<size_t>(co)];
                    for (int64_t ci = 0; ci < layer.inChannels();
                         ++ci) {
                        for (int64_t kd = 0; kd < k; ++kd) {
                            for (int64_t ky = 0; ky < k; ++ky) {
                                for (int64_t kx = 0; kx < k; ++kx) {
                                    const int64_t iz = oz - pad + kd;
                                    const int64_t iy = oy - pad + ky;
                                    const int64_t ix = ox - pad + kx;
                                    if (iz < 0 || iz >= d || iy < 0 ||
                                        iy >= h || ix < 0 || ix >= w)
                                        continue;
                                    const size_t widx =
                                        static_cast<size_t>(
                                            (((ci * k + kd) * k + ky) *
                                                 k +
                                             kx) *
                                                layer.outChannels() +
                                            co);
                                    acc +=
                                        layer.weights()[widx] *
                                        in.data()[static_cast<size_t>(
                                            ((ci * d + iz) * h + iy) *
                                                w +
                                            ix)];
                                }
                            }
                        }
                    }
                    out.at({co, oz, oy, ox}) = static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

struct Conv3dCase {
    int64_t ci, co, k, pad, d, h, w;
};

class Conv3dParam : public ::testing::TestWithParam<Conv3dCase>
{
};

TEST_P(Conv3dParam, ForwardMatchesNaive)
{
    const Conv3dCase c = GetParam();
    Rng rng(17);
    Conv3DLayer conv("conv", c.ci, c.co, c.k, c.pad);
    initGlorot(conv, rng);
    Tensor in(Shape({c.ci, c.d, c.h, c.w}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    const Tensor got = conv.forward(in);
    const Tensor want = naiveConv3d(conv, in);
    ASSERT_EQ(got.shape(), want.shape());
    for (int64_t i = 0; i < got.numel(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
}

TEST_P(Conv3dParam, ApplyDeltaMatchesRecompute)
{
    const Conv3dCase c = GetParam();
    Rng rng(19);
    Conv3DLayer conv("conv", c.ci, c.co, c.k, c.pad);
    initGlorot(conv, rng);
    Tensor in(Shape({c.ci, c.d, c.h, c.w}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    Tensor out = conv.forward(in);

    Tensor in2 = in;
    for (int rep = 0; rep < 3; ++rep) {
        const int64_t ci = rng.uniformInt(0, c.ci - 1);
        const int64_t z = rng.uniformInt(0, c.d - 1);
        const int64_t y = rng.uniformInt(0, c.h - 1);
        const int64_t x = rng.uniformInt(0, c.w - 1);
        const float delta = rng.gaussian(0.0f, 0.5f);
        in2.at({ci, z, y, x}) += delta;
        conv.applyDelta(in.shape(), ci, z, y, x, delta, out);
    }
    const Tensor ref = conv.forward(in2);
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_NEAR(out[i], ref[i], 1e-4f) << "at " << i;
}

TEST_P(Conv3dParam, AffectedOutputsMatchesDeltaFootprint)
{
    const Conv3dCase c = GetParam();
    Conv3DLayer conv("conv", c.ci, c.co, c.k, c.pad);
    for (auto &w : conv.weights())
        w = 1.0f;
    const Shape in_shape({c.ci, c.d, c.h, c.w});
    Rng rng(23);
    for (int rep = 0; rep < 3; ++rep) {
        const int64_t z = rng.uniformInt(0, c.d - 1);
        const int64_t y = rng.uniformInt(0, c.h - 1);
        const int64_t x = rng.uniformInt(0, c.w - 1);
        Tensor probe(conv.outputShape(in_shape));
        conv.applyDelta(in_shape, 0, z, y, x, 1.0f, probe);
        int64_t touched = 0;
        for (int64_t i = 0; i < probe.numel(); ++i)
            touched += probe[i] != 0.0f ? 1 : 0;
        EXPECT_EQ(touched, conv.affectedOutputs(in_shape, z, y, x));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv3dParam,
    ::testing::Values(Conv3dCase{1, 1, 3, 1, 4, 5, 5},
                      Conv3dCase{2, 3, 3, 1, 4, 6, 6},
                      Conv3dCase{3, 4, 3, 0, 5, 5, 5},
                      Conv3dCase{2, 2, 1, 0, 3, 4, 4}));

TEST(Conv3d, SamePaddingPreservesShape)
{
    Conv3DLayer conv("conv", 3, 64, 3, 1);
    // C3D CONV1: 3x16x112x112 -> 64x16x112x112.
    EXPECT_EQ(conv.outputShape(Shape({3, 16, 14, 14})),
              Shape({64, 16, 14, 14}));
}

TEST(Conv3d, ParamCount)
{
    Conv3DLayer conv("conv", 3, 64, 3, 1);
    EXPECT_EQ(conv.paramCount(), 3 * 64 * 27 + 64);
}

TEST(Conv3dDeath, WrongRankPanics)
{
    Conv3DLayer conv("conv", 3, 4, 3, 1);
    EXPECT_DEATH((void)conv.forward(Tensor(Shape({3, 8, 8}))),
                 "expects");
}

} // namespace
} // namespace reuse
