/** @file Unit tests for the 2D convolutional layer. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/conv2d.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

/** Naive direct convolution used as the reference implementation. */
Tensor
naiveConv2d(const Conv2DLayer &layer, const Tensor &in)
{
    const Shape out_shape = layer.outputShape(in.shape());
    const int64_t oh = out_shape.dim(1);
    const int64_t ow = out_shape.dim(2);
    const int64_t w = in.shape().dim(2);
    Tensor out(out_shape);
    for (int64_t co = 0; co < layer.outChannels(); ++co) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                double acc = layer.biases()[static_cast<size_t>(co)];
                for (int64_t ci = 0; ci < layer.inChannels(); ++ci) {
                    for (int64_t ky = 0; ky < layer.kernel(); ++ky) {
                        for (int64_t kx = 0; kx < layer.kernel(); ++kx) {
                            const int64_t iy = oy * layer.stride() + ky;
                            const int64_t ix = ox * layer.stride() + kx;
                            acc += layer.weight(ci, co, ky, kx) *
                                   in.data()[static_cast<size_t>(
                                       (ci * in.shape().dim(1) + iy) *
                                           w +
                                       ix)];
                        }
                    }
                }
                out.at({co, oy, ox}) = static_cast<float>(acc);
            }
        }
    }
    return out;
}

struct Conv2dCase {
    int64_t ci, co, k, stride, h, w;
};

class Conv2dParam : public ::testing::TestWithParam<Conv2dCase>
{
};

TEST_P(Conv2dParam, ForwardMatchesNaive)
{
    const Conv2dCase c = GetParam();
    Rng rng(7);
    Conv2DLayer conv("conv", c.ci, c.co, c.k, c.stride);
    initGlorot(conv, rng);
    Tensor in(Shape({c.ci, c.h, c.w}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    const Tensor got = conv.forward(in);
    const Tensor want = naiveConv2d(conv, in);
    ASSERT_EQ(got.shape(), want.shape());
    for (int64_t i = 0; i < got.numel(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
}

TEST_P(Conv2dParam, ApplyDeltaMatchesRecompute)
{
    const Conv2dCase c = GetParam();
    Rng rng(9);
    Conv2DLayer conv("conv", c.ci, c.co, c.k, c.stride);
    initGlorot(conv, rng);
    Tensor in(Shape({c.ci, c.h, c.w}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    Tensor out = conv.forward(in);

    // Change a handful of pixels and correct incrementally.
    Tensor in2 = in;
    for (int rep = 0; rep < 4; ++rep) {
        const int64_t ci = rng.uniformInt(0, c.ci - 1);
        const int64_t y = rng.uniformInt(0, c.h - 1);
        const int64_t x = rng.uniformInt(0, c.w - 1);
        const float delta = rng.gaussian(0.0f, 0.5f);
        in2.at({ci, y, x}) += delta;
        conv.applyDelta(in.shape(), ci, y, x, delta, out);
    }
    const Tensor ref = conv.forward(in2);
    for (int64_t i = 0; i < out.numel(); ++i)
        EXPECT_NEAR(out[i], ref[i], 1e-4f) << "at " << i;
}

TEST_P(Conv2dParam, AffectedOutputsMatchesDeltaFootprint)
{
    const Conv2dCase c = GetParam();
    Rng rng(13);
    Conv2DLayer conv("conv", c.ci, c.co, c.k, c.stride);
    // Unit weights so any touched output changes.
    for (auto &w : conv.weights())
        w = 1.0f;
    const Shape in_shape({c.ci, c.h, c.w});
    for (int rep = 0; rep < 4; ++rep) {
        const int64_t y = rng.uniformInt(0, c.h - 1);
        const int64_t x = rng.uniformInt(0, c.w - 1);
        Tensor probe(conv.outputShape(in_shape));
        conv.applyDelta(in_shape, 0, y, x, 1.0f, probe);
        int64_t touched = 0;
        for (int64_t i = 0; i < probe.numel(); ++i)
            touched += probe[i] != 0.0f ? 1 : 0;
        EXPECT_EQ(touched, conv.affectedOutputs(in_shape, y, x));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv2dParam,
    ::testing::Values(Conv2dCase{1, 1, 3, 1, 6, 6},
                      Conv2dCase{2, 3, 3, 1, 8, 8},
                      Conv2dCase{3, 4, 5, 2, 12, 14},
                      Conv2dCase{2, 2, 3, 2, 9, 9},
                      Conv2dCase{4, 8, 1, 1, 5, 5},
                      Conv2dCase{3, 24, 5, 2, 17, 21}));

TEST(Conv2d, OutputShapeValidPadding)
{
    Conv2DLayer conv("conv", 3, 24, 5, 2);
    // AutoPilot CONV1: 3x66x200 -> 24x31x98.
    EXPECT_EQ(conv.outputShape(Shape({3, 66, 200})),
              Shape({24, 31, 98}));
}

TEST(Conv2d, ParamAndMacCounts)
{
    Conv2DLayer conv("conv", 3, 24, 5, 2);
    EXPECT_EQ(conv.paramCount(), 3 * 24 * 25 + 24);
    EXPECT_EQ(conv.macCount(Shape({3, 66, 200})),
              24 * 31 * 98 * 3 * 25);
    EXPECT_TRUE(conv.isReusable());
}

TEST(Conv2dDeath, WrongChannelsPanics)
{
    Conv2DLayer conv("conv", 3, 4, 3, 1);
    EXPECT_DEATH((void)conv.forward(Tensor(Shape({2, 8, 8}))),
                 "input channels");
}

} // namespace
} // namespace reuse
