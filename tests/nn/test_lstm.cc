/** @file Unit tests for the LSTM cell and bidirectional LSTM layer. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/random.h"
#include "nn/initializers.h"
#include "nn/lstm.h"

namespace reuse {
namespace {

TEST(LstmCell, InitialStateIsZero)
{
    LstmCell cell(4, 3);
    const auto s = cell.initialState();
    EXPECT_EQ(s.h.size(), 3u);
    EXPECT_EQ(s.c.size(), 3u);
    for (float v : s.h)
        EXPECT_EQ(v, 0.0f);
    for (float v : s.c)
        EXPECT_EQ(v, 0.0f);
}

TEST(LstmCell, StepMatchesManualGateEquations)
{
    // One-dimensional cell with hand-set weights so Eqs. 3-8 can be
    // evaluated by hand.
    LstmCell cell(1, 1);
    const float wx[4] = {0.5f, -0.3f, 0.8f, 0.2f};
    const float wh[4] = {0.1f, 0.4f, -0.2f, 0.6f};
    const float b[4] = {0.05f, 1.0f, -0.1f, 0.0f};
    for (int g = 0; g < NumLstmGates; ++g) {
        cell.feedForward(g).weight(0, 0) = wx[g];
        cell.feedForward(g).biases()[0] = b[g];
        cell.recurrent(g).weight(0, 0) = wh[g];
        cell.recurrent(g).biases()[0] = 0.0f;
    }
    LstmCell::State prev;
    prev.h = {0.3f};
    prev.c = {-0.2f};
    const AlignedVector<float> x = {0.7f};
    const auto s = cell.step(x, prev);

    const float zi = wx[0] * x[0] + wh[0] * prev.h[0] + b[0];
    const float zf = wx[1] * x[0] + wh[1] * prev.h[0] + b[1];
    const float zg = wx[2] * x[0] + wh[2] * prev.h[0] + b[2];
    const float zo = wx[3] * x[0] + wh[3] * prev.h[0] + b[3];
    const float c_t = sigmoid(zf) * prev.c[0] +
                      sigmoid(zi) * std::tanh(zg);
    const float h_t = sigmoid(zo) * std::tanh(c_t);
    EXPECT_NEAR(s.c[0], c_t, 1e-6f);
    EXPECT_NEAR(s.h[0], h_t, 1e-6f);
}

TEST(LstmCell, HiddenOutputBounded)
{
    // h = sigmoid(.) * tanh(.) is always in (-1, 1).
    Rng rng(3);
    LstmCell cell(8, 6);
    initLstm(cell, rng);
    LstmCell::State s = cell.initialState();
    for (int t = 0; t < 20; ++t) {
        AlignedVector<float> x(8);
        for (auto &v : x)
            v = rng.gaussian(0.0f, 2.0f);
        s = cell.step(x, s);
        for (float h : s.h) {
            EXPECT_GT(h, -1.0f);
            EXPECT_LT(h, 1.0f);
        }
    }
}

TEST(LstmCell, PreactsPlusFinishEqualsStep)
{
    Rng rng(4);
    LstmCell cell(5, 4);
    initLstm(cell, rng);
    LstmCell::State prev = cell.initialState();
    AlignedVector<float> x(5);
    for (auto &v : x)
        v = rng.gaussian(0.0f, 1.0f);
    const auto preacts = cell.computePreacts(x, prev.h);
    const auto s1 = cell.finishStep(preacts, prev.c);
    const auto s2 = cell.step(x, prev);
    for (size_t j = 0; j < s1.h.size(); ++j) {
        EXPECT_FLOAT_EQ(s1.h[j], s2.h[j]);
        EXPECT_FLOAT_EQ(s1.c[j], s2.c[j]);
    }
}

TEST(LstmCell, CountsMatchDimensions)
{
    LstmCell cell(120, 320);
    EXPECT_EQ(cell.macCountPerStep(),
              4 * (120 * 320 + 320 * 320));
    // 4 gates x (Wx + bias + Wh + zero-bias-vector).
    EXPECT_EQ(cell.paramCount(),
              4 * (120 * 320 + 320 + 320 * 320 + 320));
}

TEST(BiLstm, OutputIsConcatOfDirections)
{
    Rng rng(5);
    BiLstmLayer layer("bilstm", 6, 4);
    initLstm(layer, rng);
    std::vector<Tensor> seq;
    for (int t = 0; t < 5; ++t) {
        Tensor x(Shape({6}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const auto out = layer.forwardSequence(seq);
    ASSERT_EQ(out.size(), 5u);
    for (const auto &o : out)
        EXPECT_EQ(o.shape(), Shape({8}));

    // Forward half at t=0 must equal one manual forward-cell step.
    auto s = layer.forwardCell().initialState();
    s = layer.forwardCell().step(seq[0].data(), s);
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(out[0][j], s.h[static_cast<size_t>(j)]);

    // Backward half at the last step equals one backward-cell step on
    // the last input.
    auto sb = layer.backwardCell().initialState();
    sb = layer.backwardCell().step(seq[4].data(), sb);
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(out[4][4 + j], sb.h[static_cast<size_t>(j)]);
}

TEST(BiLstm, RecurrentFlagsAndShapes)
{
    BiLstmLayer layer("bilstm", 120, 320);
    EXPECT_TRUE(layer.isRecurrent());
    EXPECT_TRUE(layer.isReusable());
    EXPECT_EQ(layer.outputDim(), 640);
    EXPECT_EQ(layer.outputShape(Shape({120})), Shape({640}));
    EXPECT_EQ(layer.paramCount(),
              2 * layer.forwardCell().paramCount());
}

TEST(BiLstm, ReversedInputMirrorsDirections)
{
    // Running the layer on the reversed sequence must swap the roles
    // of the two directions when the cells share weights.
    Rng rng(6);
    BiLstmLayer layer("bilstm", 3, 2);
    initLstm(layer.forwardCell(), rng);
    // Copy forward weights into the backward cell.
    for (int g = 0; g < NumLstmGates; ++g) {
        layer.backwardCell().feedForward(g).weights() =
            layer.forwardCell().feedForward(g).weights();
        layer.backwardCell().feedForward(g).biases() =
            layer.forwardCell().feedForward(g).biases();
        layer.backwardCell().recurrent(g).weights() =
            layer.forwardCell().recurrent(g).weights();
        layer.backwardCell().recurrent(g).biases() =
            layer.forwardCell().recurrent(g).biases();
    }
    std::vector<Tensor> seq;
    for (int t = 0; t < 4; ++t) {
        Tensor x(Shape({3}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    std::vector<Tensor> rev(seq.rbegin(), seq.rend());
    const auto out = layer.forwardSequence(seq);
    const auto out_rev = layer.forwardSequence(rev);
    // Forward half of out[t] == backward half of out_rev[T-1-t].
    for (size_t t = 0; t < seq.size(); ++t) {
        for (int64_t j = 0; j < 2; ++j) {
            EXPECT_NEAR(out[t][j],
                        out_rev[seq.size() - 1 - t][2 + j], 1e-6f);
        }
    }
}

TEST(BiLstmDeath, SingleStepForwardPanics)
{
    BiLstmLayer layer("bilstm", 3, 2);
    EXPECT_DEATH((void)layer.forward(Tensor(Shape({3}))),
                 "forwardSequence");
}

} // namespace
} // namespace reuse
