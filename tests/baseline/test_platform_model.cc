/** @file Unit tests for the CPU/GPU roofline models. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/conv2d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "baseline/platform_model.h"

namespace reuse {
namespace {

TEST(PlatformSpec, PublishedPeaks)
{
    const auto cpu = PlatformSpec::cpuI7_7700K();
    const auto gpu = PlatformSpec::gpuGTX1080();
    // i7-7700K AVX2 peak ~537 GFLOP/s; GTX 1080 ~9.3 TFLOP/s.
    EXPECT_NEAR(cpu.peakFlops, 537.6e9, 1e9);
    EXPECT_NEAR(gpu.peakFlops, 9.32e12, 0.1e12);
    EXPECT_GT(gpu.memBandwidth, cpu.memBandwidth);
    EXPECT_GT(gpu.sustainedPowerW, cpu.sustainedPowerW);
}

struct Fixture {
    Rng rng{91};
    Network fc_net{"fc", Shape({1024})};
    Network conv_net{"conv", Shape({16, 64, 64})};

    Fixture()
    {
        fc_net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC", 1024, 1024));
        conv_net.addLayer(
            std::make_unique<Conv2DLayer>("C", 16, 32, 3, 1));
        initNetwork(fc_net, rng);
        initNetwork(conv_net, rng);
    }
};

TEST(PlatformModel, TimeScalesWithExecutions)
{
    Fixture f;
    const auto cpu = PlatformSpec::cpuI7_7700K();
    const auto r1 = runOnPlatform(f.fc_net, cpu, 1);
    const auto r10 = runOnPlatform(f.fc_net, cpu, 10);
    EXPECT_NEAR(r10.seconds, 10.0 * r1.seconds, 1e-12);
    EXPECT_NEAR(r10.joules, 10.0 * r1.joules, 1e-12);
}

TEST(PlatformModel, EnergyIsPowerTimesTime)
{
    Fixture f;
    const auto gpu = PlatformSpec::gpuGTX1080();
    const auto r = runOnPlatform(f.fc_net, gpu, 5);
    EXPECT_NEAR(r.joules, r.seconds * gpu.sustainedPowerW, 1e-12);
}

TEST(PlatformModel, Batch1FcIsMemoryBoundOnGpu)
{
    Fixture f;
    const auto gpu = PlatformSpec::gpuGTX1080();
    const auto r = runOnPlatform(f.fc_net, gpu, 1);
    // Weight streaming floor: params * 4 bytes / bandwidth.
    const double mem_floor =
        static_cast<double>(f.fc_net.paramCount()) * 4.0 /
        gpu.memBandwidth;
    EXPECT_GE(r.seconds, mem_floor);
}

TEST(PlatformModel, GpuFasterThanCpuOnDenseConv)
{
    Fixture f;
    const auto cpu = runOnPlatform(
        f.conv_net, PlatformSpec::cpuI7_7700K(), 1);
    const auto gpu = runOnPlatform(
        f.conv_net, PlatformSpec::gpuGTX1080(), 1);
    EXPECT_LT(gpu.seconds, cpu.seconds);
}

TEST(PlatformModel, CpuUsesLessPowerButMoreTime)
{
    Fixture f;
    const auto cpu = runOnPlatform(
        f.conv_net, PlatformSpec::cpuI7_7700K(), 1);
    const auto gpu = runOnPlatform(
        f.conv_net, PlatformSpec::gpuGTX1080(), 1);
    EXPECT_GT(cpu.seconds, gpu.seconds);
    EXPECT_LT(cpu.joules / cpu.seconds, gpu.joules / gpu.seconds);
}

TEST(PlatformModel, SequenceLengthScalesRecurrentWork)
{
    Rng rng(92);
    Network rnn("rnn", Shape({64}));
    rnn.addLayer(std::make_unique<FullyConnectedLayer>("FC", 64, 64));
    initNetwork(rnn, rng);
    // Feed-forward nets ignore sequence length.
    const auto cpu = PlatformSpec::cpuI7_7700K();
    const auto a = runOnPlatform(rnn, cpu, 1, 1);
    const auto b = runOnPlatform(rnn, cpu, 1, 100);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(PlatformModel, OverheadChargedPerExecution)
{
    Rng rng(93);
    Network tiny("tiny", Shape({2}));
    tiny.addLayer(std::make_unique<FullyConnectedLayer>("FC", 2, 2));
    initNetwork(tiny, rng);
    const auto gpu = PlatformSpec::gpuGTX1080();
    const auto r = runOnPlatform(tiny, gpu, 1);
    EXPECT_GE(r.seconds, gpu.perExecutionOverheadSec);
}

} // namespace
} // namespace reuse
