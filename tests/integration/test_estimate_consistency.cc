/** @file Consistency tests between functional simulation and the
 *  analytic (similarity-driven) estimator. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "harness/experiment.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"
#include "sim/accelerator.h"

namespace reuse {
namespace {

struct Fixture {
    Rng rng{101};
    Network net{"mlp", Shape({64})};
    QuantizationPlan plan;

    Fixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 64, 512));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 512, 128));
        initNetwork(net, rng);
        std::vector<Tensor> calib;
        for (int i = 0; i < 8; ++i) {
            Tensor t(Shape({64}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        const auto ranges = profileNetworkRanges(net, calib);
        plan = makePlan(net, ranges, 16, {0, 2});
    }
};

TEST(EstimateConsistency, MeasuredSimilarityReproducesCycles)
{
    // Run functionally, extract per-layer similarity, feed it to the
    // analytic estimator: total cycles must agree closely (the
    // estimator only approximates the per-execution distribution of
    // changes by its mean).
    Fixture f;
    ReuseEngine engine(f.net, f.plan);
    std::vector<ExecutionTrace> traces;
    Tensor x(Shape({64}));
    f.rng.fillGaussian(x.data(), 0.0f, 1.0f);
    const int execs = 30;
    for (int i = 0; i < execs; ++i) {
        for (int64_t j = 0; j < 64; ++j)
            x[j] += f.rng.gaussian(0.0f, 0.05f);
        engine.execute(x);
        traces.push_back(engine.lastTrace());
    }
    const auto sims = layerSimilarityVector(engine.stats());

    AcceleratorSim sim;
    const auto functional =
        sim.simulate(f.net, AccelMode::Reuse, traces);
    const auto estimated =
        sim.estimate(f.net, AccelMode::Reuse, sims, execs);
    EXPECT_NEAR(estimated.cycles / functional.cycles, 1.0, 0.15);
    EXPECT_NEAR(static_cast<double>(estimated.totals.fpMul) /
                    static_cast<double>(functional.totals.fpMul),
                1.0, 0.15);
}

TEST(EstimateConsistency, BaselineExactMatch)
{
    Fixture f;
    ReuseEngine engine(f.net, QuantizationPlan(f.net));
    std::vector<ExecutionTrace> traces;
    Tensor x(Shape({64}), 0.25f);
    for (int i = 0; i < 5; ++i) {
        engine.execute(x);
        traces.push_back(engine.lastTrace());
    }
    AcceleratorSim sim;
    const auto functional =
        sim.simulate(f.net, AccelMode::Baseline, traces);
    const auto estimated = sim.estimate(
        f.net, AccelMode::Baseline,
        std::vector<double>(f.net.layerCount(), -1.0), 5);
    EXPECT_DOUBLE_EQ(functional.cycles, estimated.cycles);
    EXPECT_EQ(functional.totals.edramWeightBytes,
              estimated.totals.edramWeightBytes);
    EXPECT_EQ(functional.totals.ioReadBytes,
              estimated.totals.ioReadBytes);
    EXPECT_EQ(functional.totals.fpAdd, estimated.totals.fpAdd);
}

TEST(EstimateConsistency, EstimateInBaselineModeIgnoresSimilarity)
{
    Fixture f;
    AcceleratorSim sim;
    std::vector<double> sims(f.net.layerCount(), 0.99);
    const auto a =
        sim.estimate(f.net, AccelMode::Baseline, sims, 4);
    const auto b = sim.estimate(
        f.net, AccelMode::Baseline,
        std::vector<double>(f.net.layerCount(), -1.0), 4);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
}

} // namespace
} // namespace reuse
