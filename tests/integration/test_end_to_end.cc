/** @file End-to-end integration tests on the paper workloads. */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "energy/energy_model.h"
#include "sim/accelerator.h"
#include "sim/io_buffer_model.h"

namespace reuse {
namespace {

WorkloadSetupConfig
smallConfig()
{
    WorkloadSetupConfig cfg;
    cfg.calibrationFrames = 24;
    cfg.c3dSpatialDivisor = 8;
    return cfg;
}

TEST(EndToEnd, KaldiReuseMatchesReferenceAndSavesWork)
{
    Workload w = setupKaldi(smallConfig());
    const auto inputs = w.generator->take(30);
    const auto m = measureWorkload(*w.bundle.network, w.plan, inputs);

    // Accuracy proxy: near-total agreement with FP32 from scratch.
    EXPECT_GT(m.accuracy.top1Agreement, 0.9);
    EXPECT_LT(m.accuracy.meanRelativeError, 0.2);

    // Quantized layers show substantial similarity and reuse.
    EXPECT_GT(m.stats.meanSimilarity(), 0.35);
    EXPECT_GT(m.stats.meanComputationReuse(), 0.35);

    // Trace covers every execution and layer.
    EXPECT_EQ(m.traces.size(), inputs.size());
    EXPECT_EQ(m.traces[0].size(), w.bundle.network->layerCount());
}

TEST(EndToEnd, KaldiSpeedupAndEnergyInPaperBand)
{
    Workload w = setupKaldi(smallConfig());
    const auto inputs = w.generator->take(40);
    const auto m = measureWorkload(*w.bundle.network, w.plan, inputs);

    AcceleratorSim sim;
    const auto reuse =
        sim.simulate(*w.bundle.network, AccelMode::Reuse, m.traces);
    const auto baseline = sim.estimate(
        *w.bundle.network, AccelMode::Baseline,
        std::vector<double>(w.bundle.network->layerCount(), -1.0),
        static_cast<int64_t>(inputs.size()));
    const double speedup = baseline.cycles / reuse.cycles;
    // Paper: 1.9x for Kaldi.  Allow a generous band.
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 3.5);

    const auto e_base = computeEnergy(baseline);
    const auto e_reuse = computeEnergy(reuse);
    EXPECT_LT(e_reuse.total(), e_base.total());
}

TEST(EndToEnd, EesenSequenceReuse)
{
    Workload w = setupEesen(smallConfig());
    const auto seq = w.generator->take(24);
    const auto m = measureWorkload(*w.bundle.network, w.plan, seq);
    EXPECT_GT(m.stats.meanSimilarity(), 0.2);
    EXPECT_GT(m.accuracy.top1Agreement, 0.7);
    // One trace per sequence for recurrent nets.
    EXPECT_EQ(m.traces.size(), 1u);
    const auto &rec = m.traces[0][w.bundle.quantizedLayers[0]];
    EXPECT_EQ(rec.kind, LayerKind::BiLstm);
    EXPECT_EQ(rec.steps, 24);
}

TEST(EndToEnd, AutopilotConvReuse)
{
    Workload w = setupAutopilot(smallConfig());
    const auto inputs = w.generator->take(10);
    const auto m = measureWorkload(*w.bundle.network, w.plan, inputs);
    // Driving scenes are highly static: strong reuse expected.
    EXPECT_GT(m.stats.meanSimilarity(), 0.5);
    EXPECT_GT(m.stats.meanComputationReuse(), 0.5);
    EXPECT_LT(m.accuracy.meanRelativeError, 0.5);
}

TEST(EndToEnd, C3DScaledVideoReuse)
{
    Workload w = setupC3D(smallConfig());
    const auto inputs = w.generator->take(6);
    const auto m = measureWorkload(*w.bundle.network, w.plan, inputs);
    EXPECT_GT(m.stats.meanSimilarity(), 0.4);
    EXPECT_GT(m.accuracy.top1Agreement, 0.6);
}

TEST(EndToEnd, StorageFootprintOrdersMatchTableIII)
{
    // Relative ordering of I/O buffer needs across the four nets
    // must match Table III: C3D >> AutoPilot > Kaldi > EESEN.
    WorkloadSetupConfig cfg = smallConfig();
    AcceleratorParams p;

    Workload kaldi = setupKaldi(cfg);
    Workload eesen = setupEesen(cfg);
    const auto fp_kaldi = computeStorageFootprint(
        *kaldi.bundle.network, kaldi.plan, p);
    const auto fp_eesen = computeStorageFootprint(
        *eesen.bundle.network, eesen.plan, p);
    EXPECT_GT(fp_kaldi.ioBufferReuseBytes,
              fp_eesen.ioBufferReuseBytes);
    // Reuse adds storage in both cases.
    EXPECT_GT(fp_kaldi.ioBufferReuseBytes,
              fp_kaldi.ioBufferBaselineBytes);
    EXPECT_GT(fp_eesen.ioBufferReuseBytes,
              fp_eesen.ioBufferBaselineBytes);
}

TEST(EndToEnd, ReuseNeverChangesResultsMoreThanQuantization)
{
    // The reuse machinery itself must not add error beyond what
    // quantization already causes: compare reuse outputs against
    // from-scratch-on-quantized-inputs outputs layer by layer via
    // the whole network (fine quantizer -> near-exact agreement).
    Workload w = setupKaldi(smallConfig());
    // Rebuild the plan with very fine quantization.
    auto gen = std::move(w.generator);
    const auto calib = gen->take(16);
    const QuantizationPlan fine_plan =
        calibratePlan(*w.bundle.network, calib, 4096,
                      w.bundle.quantizedLayers);
    const auto inputs = gen->take(10);
    const auto m =
        measureWorkload(*w.bundle.network, fine_plan, inputs);
    EXPECT_GT(m.accuracy.top1Agreement, 0.99);
    EXPECT_LT(m.accuracy.meanRelativeError, 1e-2);
}

} // namespace
} // namespace reuse
