/** @file Unit tests for the dependency-free JSON parser. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/json.h"

namespace reuse {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").value.isNull());
    EXPECT_TRUE(parseJson("true").value.asBool());
    EXPECT_FALSE(parseJson("false").value.asBool());
    EXPECT_DOUBLE_EQ(parseJson("3.5").value.asNumber(), 3.5);
    EXPECT_DOUBLE_EQ(parseJson("-0.25e2").value.asNumber(), -25.0);
    EXPECT_EQ(parseJson("42").value.asInt(), 42);
    EXPECT_EQ(parseJson("\"hi\"").value.asString(), "hi");
}

TEST(Json, ParsesNestedStructures)
{
    const JsonParseResult r = parseJson(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}}");
    ASSERT_TRUE(r.ok) << r.error;
    const JsonValue &v = r.value;
    ASSERT_TRUE(v.isObject());
    ASSERT_TRUE(v.has("a"));
    const JsonValue::Array &a = v.at("a").asArray();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0].asInt(), 1);
    EXPECT_TRUE(a[2].at("b").asBool());
    EXPECT_TRUE(v.at("c").at("d").isNull());
    EXPECT_FALSE(v.has("missing"));
}

TEST(Json, ParsesStringEscapes)
{
    const JsonParseResult r =
        parseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.asString(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").ok);
    EXPECT_FALSE(parseJson("{").ok);
    EXPECT_FALSE(parseJson("[1,]").ok);
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok);
    EXPECT_FALSE(parseJson("\"unterminated").ok);
    EXPECT_FALSE(parseJson("nul").ok);
    EXPECT_FALSE(parseJson("1 trailing").ok);
    EXPECT_FALSE(parseJson("{\"a\":1,}").ok);
}

TEST(Json, ErrorsCarryContext)
{
    const JsonParseResult r = parseJson("{\"a\": }");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("offset"), std::string::npos);
}

TEST(Json, ParseFileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "json_roundtrip.json";
    {
        std::ofstream out(path);
        out << "{\"x\": [1, 2, 3]}";
    }
    const JsonParseResult r = parseJsonFile(path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.at("x").asArray().size(), 3u);
    std::remove(path.c_str());

    const JsonParseResult missing =
        parseJsonFile("/nonexistent/trace.json");
    EXPECT_FALSE(missing.ok);
    EXPECT_NE(missing.error.find("trace.json"), std::string::npos);
}

TEST(Json, EscapeProducesParseableStrings)
{
    const std::string nasty = "a\"b\\c\nd\te\x01";
    const JsonParseResult r =
        parseJson("\"" + jsonEscape(nasty) + "\"");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.asString(), nasty);
}

} // namespace
} // namespace reuse
