/** @file Unit tests for the seedable random source. */

#include <gtest/gtest.h>

#include "common/random.h"

namespace reuse {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += (a.uniform() != b.uniform()) ? 1 : 0;
    EXPECT_GT(differing, 0);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const float first = a.uniform();
    a.uniform();
    a.seed(7);
    EXPECT_EQ(a.uniform(), first);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng r(99);
    for (int i = 0; i < 1000; ++i) {
        const float v = r.uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = r.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= (v == 2);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng r(31);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.gaussian(2.0f, 0.5f);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.02);
    EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(Rng, BernoulliProbability)
{
    Rng r(8);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, FillGaussianFillsAll)
{
    Rng r(77);
    std::vector<float> v(64, 0.0f);
    r.fillGaussian(v, 10.0f, 0.1f);
    for (float x : v)
        EXPECT_NEAR(x, 10.0f, 1.0f);
}

TEST(Rng, FillUniformFillsWithinBounds)
{
    Rng r(78);
    std::vector<float> v(64, -1.0f);
    r.fillUniform(v, 0.0f, 1.0f);
    for (float x : v) {
        EXPECT_GE(x, 0.0f);
        EXPECT_LT(x, 1.0f);
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(55);
    Rng child = a.fork();
    // The fork must not replay the parent's stream.
    Rng parent_copy(55);
    parent_copy.fork();
    EXPECT_EQ(a.uniform(), parent_copy.uniform());
    // Child stream deterministic given the parent seed.
    Rng a2(55);
    Rng child2 = a2.fork();
    EXPECT_EQ(child.uniform(), child2.uniform());
}

} // namespace
} // namespace reuse
