/**
 * @file
 * Semantics tests of the annotated sync primitives (common/sync.h):
 * mutual exclusion, try-lock behavior, condition-variable handshakes,
 * and the SharedMutex reader/writer contract.  The concurrency cases
 * double as TSan targets (test_common runs under the tsan CI job); a
 * lost-update or torn invariant here means a wrapper forwards to the
 * wrong std primitive.
 */

#include "common/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace reuse {
namespace {

// GTest assertion macros wrap their condition in AssertionResult
// objects, which hides a tryLock() result from Clang's thread-safety
// analysis (it can no longer pair the conditional acquire with its
// release).  These helpers isolate such probes behind the documented
// escape hatch; each acquires and releases within its own body.

bool tryLockThenUnlock(Mutex &mu) NO_THREAD_SAFETY_ANALYSIS
{
    if (!mu.tryLock())
        return false;
    mu.unlock();
    return true;
}

bool tryLockThenUnlock(SharedMutex &mu) NO_THREAD_SAFETY_ANALYSIS
{
    if (!mu.tryLock())
        return false;
    mu.unlock();
    return true;
}

bool trySharedLockThenUnlock(SharedMutex &mu) NO_THREAD_SAFETY_ANALYSIS
{
    if (!mu.tryLockShared())
        return false;
    mu.unlockShared();
    return true;
}

TEST(Mutex, MutualExclusionUnderContention)
{
    Mutex mu;
    int counter = 0;
    constexpr int kThreads = 4;
    constexpr int kIters = 25000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                MutexLock lock(mu);
                ++counter;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Mutex, TryLockFailsWhileHeldAndSucceedsAfter)
{
    Mutex mu;
    mu.lock();
    std::thread contender(
        [&] { EXPECT_FALSE(tryLockThenUnlock(mu)); });
    contender.join();
    mu.unlock();
    EXPECT_TRUE(tryLockThenUnlock(mu));
}

TEST(MutexLock, UnlockRelockWindow)
{
    // The worker-loop idiom (kernels/thread_pool.cc): drop the lock
    // around a long operation, reacquire to update shared state.
    Mutex mu;
    int value = 0;
    MutexLock lock(mu);
    value = 1;
    lock.unlock();
    {
        // The mutex must be genuinely free inside the window.
        std::thread observer(
            [&] { EXPECT_TRUE(tryLockThenUnlock(mu)); });
        observer.join();
    }
    lock.lock();
    value = 2;
    EXPECT_EQ(value, 2);
}

TEST(CondVar, NotifyWakesPredicateLoop)
{
    Mutex mu;
    CondVar cv;
    bool ready = false;
    int observed = 0;

    std::thread waiter([&] {
        MutexLock lock(mu);
        while (!ready)
            cv.wait(lock);
        observed = 1;
    });
    {
        MutexLock lock(mu);
        ready = true;
    }
    cv.notifyOne();
    waiter.join();
    EXPECT_EQ(observed, 1);
}

TEST(CondVar, WaitForTimesOutWithoutNotify)
{
    Mutex mu;
    CondVar cv;
    MutexLock lock(mu);
    // No notifier exists; waitFor must return (timeout) rather than
    // block forever.  Spurious wakeups also satisfy the contract.
    cv.waitFor(lock, std::chrono::milliseconds(5));
    SUCCEED();
}

TEST(SharedMutex, WriterExcludesReadersAndWriters)
{
    SharedMutex mu;
    mu.lock();
    std::thread contender([&] {
        EXPECT_FALSE(tryLockThenUnlock(mu));
        EXPECT_FALSE(trySharedLockThenUnlock(mu));
    });
    contender.join();
    mu.unlock();
}

TEST(SharedMutex, ReadersShareButExcludeWriters)
{
    SharedMutex mu;
    mu.lockShared();
    std::thread contender([&] {
        EXPECT_TRUE(trySharedLockThenUnlock(mu));
        EXPECT_FALSE(tryLockThenUnlock(mu));
    });
    contender.join();
    mu.unlockShared();
}

TEST(SharedMutex, ReaderWriterStressKeepsInvariant)
{
    // Writers keep two fields in lockstep; readers assert they never
    // observe them torn.  Under TSan this additionally proves the
    // Reader/WriterMutexLock scopes establish happens-before edges.
    SharedMutex mu;
    int64_t a = 0;
    int64_t b = 0;
    constexpr int kWriters = 2;
    constexpr int kReaders = 4;
    constexpr int kIters = 5000;

    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                WriterMutexLock lock(mu);
                ++a;
                ++b;
            }
        });
    }
    for (int t = 0; t < kReaders; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                ReaderMutexLock lock(mu);
                ASSERT_EQ(a, b);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(a, kWriters * kIters);
    EXPECT_EQ(b, a);
}

} // namespace
} // namespace reuse
