/** @file Unit tests for small numeric helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"

namespace reuse {
namespace {

TEST(CeilDiv, ExactAndInexact)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1, 128), 1);
}

TEST(RoundUp, ToMultiples)
{
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_EQ(roundUp(0, 8), 0);
}

TEST(Clamp, AllBranches)
{
    EXPECT_EQ(clamp(5, 0, 10), 5);
    EXPECT_EQ(clamp(-1, 0, 10), 0);
    EXPECT_EQ(clamp(42, 0, 10), 10);
    EXPECT_FLOAT_EQ(clamp(0.5f, 0.0f, 1.0f), 0.5f);
}

TEST(AlmostEqual, RelativeAndAbsolute)
{
    EXPECT_TRUE(almostEqual(1.0, 1.0));
    EXPECT_TRUE(almostEqual(1.0, 1.0 + 1e-9));
    EXPECT_FALSE(almostEqual(1.0, 1.1));
    EXPECT_TRUE(almostEqual(0.0, 1e-12));
    EXPECT_TRUE(almostEqual(1e6, 1e6 * (1.0 + 1e-8)));
}

TEST(Sigmoid, KnownValues)
{
    EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
    EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6);
    EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6);
    // Symmetry: sigma(-x) = 1 - sigma(x).
    for (float x : {0.5f, 1.0f, 2.0f, 5.0f})
        EXPECT_NEAR(sigmoid(-x), 1.0f - sigmoid(x), 1e-6f);
}

TEST(Sigmoid, MatchesNaiveFormulaInStableRange)
{
    for (float x = -5.0f; x <= 5.0f; x += 0.25f) {
        const float naive = 1.0f / (1.0f + std::exp(-x));
        EXPECT_NEAR(sigmoid(x), naive, 1e-6f);
    }
}

} // namespace
} // namespace reuse
