/** @file Unit tests for the stat counters and running statistics. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/stats.h"

namespace reuse {
namespace {

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0.0);
    EXPECT_EQ(c.samples(), 0u);
    EXPECT_EQ(c.mean(), 0.0);
}

TEST(Counter, AccumulatesAndCounts)
{
    Counter c;
    c.add(2.5);
    c.add(1.5);
    c.inc();
    EXPECT_DOUBLE_EQ(c.value(), 5.0);
    EXPECT_EQ(c.samples(), 3u);
    EXPECT_NEAR(c.mean(), 5.0 / 3.0, 1e-12);
}

TEST(Counter, ResetClears)
{
    Counter c;
    c.add(7.0);
    c.reset();
    EXPECT_EQ(c.value(), 0.0);
    EXPECT_EQ(c.samples(), 0u);
}

TEST(Counter, ConcurrentAddsLoseNothing)
{
    // Serving workers bump shared counters on every frame; adds from
    // many threads must all land (CAS loop in atomicAddDouble).
    Counter c;
    const int kThreads = 8;
    const int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add(1.0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(c.value(), double(kThreads) * kAdds);
    EXPECT_EQ(c.samples(), uint64_t(kThreads) * kAdds);
}

TEST(Counter, SetHasGaugeSemantics)
{
    Counter c;
    c.add(3.0);
    c.add(4.0);
    c.set(9.5);
    EXPECT_DOUBLE_EQ(c.value(), 9.5);
    EXPECT_EQ(c.samples(), 1u);
    EXPECT_DOUBLE_EQ(c.mean(), 9.5);
}

TEST(Counter, ConcurrentSettersNeverProduceASum)
{
    // Metric publishers re-stamp gauges concurrently (serve's
    // publishStats may race the harness).  A reset()+add() pair can
    // interleave into old+new; set() must always leave exactly one
    // writer's value.
    Counter c;
    const int kThreads = 4;
    const int kSets = 20000;
    std::vector<std::thread> threads;
    std::atomic<bool> bad{false};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, t] {
            for (int i = 0; i < kSets; ++i)
                c.set(100.0 + t);
        });
    }
    threads.emplace_back([&c, &bad] {
        for (int i = 0; i < kSets; ++i) {
            const double v = c.value();
            if (v != 0.0 && (v < 100.0 || v > 103.0))
                bad.store(true, std::memory_order_relaxed);
        }
    });
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(bad.load()) << "observed a torn/summed gauge value";
    EXPECT_GE(c.value(), 100.0);
    EXPECT_LE(c.value(), 103.0);
    EXPECT_EQ(c.samples(), 1u);
}

TEST(Counter, ConcurrentSetAndAddKeepsSamplesConsistent)
{
    // One publisher stamping a gauge while recorders increment: the
    // final sample count must equal what the operations after the
    // last set() produced — never a doubled or negative count.
    Counter c;
    std::thread publisher([&c] {
        for (int i = 0; i < 5000; ++i)
            c.set(1.0);
    });
    std::thread recorder([&c] {
        for (int i = 0; i < 5000; ++i)
            c.inc();
    });
    publisher.join();
    recorder.join();
    // After both writers quiesce the counter reflects the last set()
    // plus any adds that landed after it.
    EXPECT_GE(c.samples(), 1u);
    EXPECT_LE(c.samples(), 5001u);
    EXPECT_GE(c.value(), 1.0);
}

TEST(StatRegistry, ConcurrentGetAndAddIsSafe)
{
    StatRegistry reg;
    const int kThreads = 8;
    const int kAdds = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Half the threads hammer a shared counter, half also
            // register their own (concurrent first-use creation).
            for (int i = 0; i < kAdds; ++i) {
                reg.get("shared").inc();
                reg.get("own." + std::to_string(t)).inc();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(reg.get("shared").value(),
                     double(kThreads) * kAdds);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_DOUBLE_EQ(reg.get("own." + std::to_string(t)).value(),
                         kAdds);
}

TEST(StatRegistry, GetCreatesOnFirstUse)
{
    StatRegistry reg;
    EXPECT_FALSE(reg.has("a.b"));
    reg.get("a.b").inc();
    EXPECT_TRUE(reg.has("a.b"));
    EXPECT_EQ(reg.get("a.b").value(), 1.0);
}

TEST(StatRegistry, SumWithPrefix)
{
    StatRegistry reg;
    reg.get("sim.tile0.macs").add(10);
    reg.get("sim.tile1.macs").add(20);
    reg.get("energy.total").add(99);
    EXPECT_DOUBLE_EQ(reg.sumWithPrefix("sim."), 30.0);
    EXPECT_DOUBLE_EQ(reg.sumWithPrefix("energy."), 99.0);
    EXPECT_DOUBLE_EQ(reg.sumWithPrefix("none."), 0.0);
}

TEST(StatRegistry, ResetAllClearsEverything)
{
    StatRegistry reg;
    reg.get("x").add(5);
    reg.get("y").add(6);
    reg.resetAll();
    EXPECT_EQ(reg.get("x").value(), 0.0);
    EXPECT_EQ(reg.get("y").value(), 0.0);
}

TEST(StatRegistry, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    reg.get("alpha").add(3);
    const std::string d = reg.dump();
    EXPECT_NE(d.find("alpha"), std::string::npos);
    EXPECT_NE(d.find("3"), std::string::npos);
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanMinMaxSum)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_EQ(s.count(), 4u);
}

TEST(RunningStats, VarianceMatchesClosedForm)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    // Known population variance of this classic sample is 4.
    EXPECT_NEAR(s.variance(), 4.0, 1e-9);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(RunningStats, SingleSampleHasZeroVariance)
{
    RunningStats s;
    s.add(42.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

} // namespace
} // namespace reuse
