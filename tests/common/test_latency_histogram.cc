/** @file Unit tests for the lock-free latency histogram. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/latency_histogram.h"

namespace reuse {
namespace {

TEST(LatencyHistogram, EmptyIsSafe)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(LatencyHistogram, CountSumMean)
{
    LatencyHistogram h;
    h.record(100.0);
    h.record(200.0);
    h.record(300.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 600.0);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogram, PercentilesApproximateWithinBucketResolution)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(double(i));
    // Geometric buckets give ~9% relative resolution.
    EXPECT_NEAR(h.percentile(0.50), 500.0, 500.0 * 0.10);
    EXPECT_NEAR(h.percentile(0.95), 950.0, 950.0 * 0.10);
    EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 * 0.10);
    // Percentiles are monotone in p.
    EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
    EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST(LatencyHistogram, OutOfRangeSamplesAreClamped)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(-5.0);
    h.record(1e12);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GE(h.percentile(0.99), h.percentile(0.01));
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.record(50.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(LatencyHistogram, SummaryMentionsCount)
{
    LatencyHistogram h;
    h.record(10.0);
    h.record(20.0);
    EXPECT_NE(h.summary().find("2"), std::string::npos);
}

TEST(LatencyHistogram, ConcurrentRecordsLoseNothing)
{
    LatencyHistogram h;
    const int kThreads = 8;
    const int kSamples = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 1; i <= kSamples; ++i)
                h.record(double(i % 1000 + 1));
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kSamples);
    EXPECT_GT(h.percentile(0.5), 0.0);
}

} // namespace
} // namespace reuse
