/** @file Unit tests for the lock-free latency histogram. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/latency_histogram.h"

namespace reuse {
namespace {

TEST(LatencyHistogram, EmptyIsSafe)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(LatencyHistogram, CountSumMean)
{
    LatencyHistogram h;
    h.record(100.0);
    h.record(200.0);
    h.record(300.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 600.0);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogram, PercentilesApproximateWithinBucketResolution)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(double(i));
    // Geometric buckets give ~9% relative resolution.
    EXPECT_NEAR(h.percentile(0.50), 500.0, 500.0 * 0.10);
    EXPECT_NEAR(h.percentile(0.95), 950.0, 950.0 * 0.10);
    EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 * 0.10);
    // Percentiles are monotone in p.
    EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
    EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST(LatencyHistogram, OutOfRangeSamplesAreClamped)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(-5.0);
    h.record(1e12);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GE(h.percentile(0.99), h.percentile(0.01));
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.record(50.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(LatencyHistogram, SummaryMentionsCount)
{
    LatencyHistogram h;
    h.record(10.0);
    h.record(20.0);
    EXPECT_NE(h.summary().find("2"), std::string::npos);
}

TEST(LatencyHistogram, EmptyPercentileIsZeroAtAllQuantiles)
{
    LatencyHistogram h;
    for (const double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(h.percentile(p), 0.0);
}

TEST(LatencyHistogram, SingleSamplePercentilesLandInItsBucket)
{
    LatencyHistogram h;
    h.record(100.0);
    // Every quantile of a one-sample distribution falls inside the
    // sample's bucket (~9% wide).
    for (const double p : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_GE(h.percentile(p), 100.0 * 0.9);
        EXPECT_LE(h.percentile(p), 100.0 * 1.1);
    }
}

TEST(LatencyHistogram, SamplesBeyondLastBucketClampToTopBound)
{
    LatencyHistogram h;
    h.record(1e15);  // far past the ~1h top of the range
    h.record(1e15);
    const double p99 = h.percentile(0.99);
    EXPECT_GT(p99, 1e9);           // clamped into the top octave
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 2e15);  // sum keeps the true values
}

TEST(LatencyHistogram, MergeMatchesRecordingIntoOne)
{
    LatencyHistogram a, b, combined;
    for (int i = 1; i <= 500; ++i) {
        a.record(double(i));
        combined.record(double(i));
    }
    for (int i = 501; i <= 1000; ++i) {
        b.record(double(i));
        combined.record(double(i));
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    for (const double p : {0.25, 0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p));
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    LatencyHistogram a, empty;
    a.record(10.0);
    a.record(20.0);
    const double before = a.percentile(0.5);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), before);

    LatencyHistogram target;
    target.merge(a);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.sum(), a.sum());
}

TEST(LatencyHistogram, ResetAfterMergeClearsEverything)
{
    LatencyHistogram a, b;
    a.record(10.0);
    b.record(1000.0);
    a.merge(b);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.sum(), 0.0);
    EXPECT_EQ(a.percentile(0.99), 0.0);
    // The merge source is untouched by the target's reset.
    EXPECT_EQ(b.count(), 1u);
}

TEST(LatencyHistogram, ConcurrentRecordsLoseNothing)
{
    LatencyHistogram h;
    const int kThreads = 8;
    const int kSamples = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 1; i <= kSamples; ++i)
                h.record(double(i % 1000 + 1));
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kSamples);
    EXPECT_GT(h.percentile(0.5), 0.0);
}

} // namespace
} // namespace reuse
