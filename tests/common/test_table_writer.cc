/** @file Unit tests for table/CSV formatting helpers. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table_writer.h"

namespace reuse {
namespace {

TEST(TableWriter, PrintsHeadersAndRows)
{
    TableWriter t({"Layer", "Reuse"});
    t.addRow({"FC3", "75%"});
    t.addRow({"FC4", "66%"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("Layer"), std::string::npos);
    EXPECT_NE(s.find("FC3"), std::string::npos);
    EXPECT_NE(s.find("66%"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableWriter, CsvIsCommaSeparated)
{
    TableWriter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TableWriter, AlignsColumns)
{
    TableWriter t({"x", "y"});
    t.addRow({"longvalue", "1"});
    std::ostringstream oss;
    t.print(oss);
    // Every printed line has the same length when columns align.
    std::istringstream lines(oss.str());
    std::string line;
    size_t len = 0;
    while (std::getline(lines, line)) {
        if (len == 0)
            len = line.size();
        EXPECT_EQ(line.size(), len);
    }
}

TEST(FormatDouble, RespectsDecimals)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(FormatPercent, ConvertsRatio)
{
    EXPECT_EQ(formatPercent(0.631, 1), "63.1%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(FormatBytes, PicksUnits)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.50 MB");
    EXPECT_EQ(formatBytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

} // namespace
} // namespace reuse
