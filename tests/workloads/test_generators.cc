/** @file Unit tests for the synthetic sequence generators. */

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "workloads/speech_generator.h"
#include "workloads/video_generator.h"

namespace reuse {
namespace {

TEST(SpeechFrameGenerator, ShapeAndDeterminism)
{
    SpeechParams p;
    p.featureDim = 40;
    SpeechFrameGenerator a(p, 5), b(p, 5);
    EXPECT_EQ(a.inputShape(), Shape({40}));
    for (int i = 0; i < 10; ++i) {
        const Tensor ta = a.next();
        const Tensor tb = b.next();
        for (int64_t j = 0; j < 40; ++j)
            EXPECT_EQ(ta[j], tb[j]);
    }
}

TEST(SpeechFrameGenerator, ConsecutiveFramesAreSimilar)
{
    SpeechParams p;
    SpeechFrameGenerator g(p, 11);
    Tensor prev = g.next();
    double total_rel = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const Tensor cur = g.next();
        total_rel += relativeDifference(cur, prev);
        prev = cur;
    }
    // The paper reports <14% average relative difference for its
    // DNNs' inputs; the synthetic stream must be in that regime.
    EXPECT_LT(total_rel / n, 0.30);
    EXPECT_GT(total_rel / n, 0.0);
}

TEST(SpeechFrameGenerator, ResetReproducesStream)
{
    SpeechParams p;
    SpeechFrameGenerator g(p, 3);
    const Tensor first = g.next();
    g.next();
    g.reset(3);
    const Tensor again = g.next();
    for (int64_t j = 0; j < first.numel(); ++j)
        EXPECT_EQ(first[j], again[j]);
}

TEST(SpeechWindowGenerator, WindowSlidesByOneFrame)
{
    SpeechParams p;
    p.featureDim = 4;
    SpeechWindowGenerator g(p, 3, 21);
    EXPECT_EQ(g.inputShape(), Shape({12}));
    const Tensor w1 = g.next();
    const Tensor w2 = g.next();
    // Frames 1..2 of w1 must equal frames 0..1 of w2.
    for (int64_t i = 0; i < 8; ++i)
        EXPECT_EQ(w1[4 + i], w2[i]);
}

TEST(SpeechWindowGenerator, TakeProducesRequestedCount)
{
    SpeechParams p;
    SpeechWindowGenerator g(p, 9, 22);
    const auto frames = g.take(7);
    EXPECT_EQ(frames.size(), 7u);
    for (const auto &f : frames)
        EXPECT_EQ(f.numel(), 9 * 40);
}

TEST(VideoWindowGenerator, ShapeAndRange)
{
    VideoParams p;
    p.height = 16;
    p.width = 16;
    p.framesPerWindow = 4;
    VideoWindowGenerator g(p, 31);
    const Tensor w = g.next();
    EXPECT_EQ(w.shape(), Shape({3, 4, 16, 16}));
    for (int64_t i = 0; i < w.numel(); ++i) {
        EXPECT_GE(w[i], 0.0f);
        EXPECT_LE(w[i], 1.0f);
    }
}

TEST(VideoWindowGenerator, StaticBackgroundGivesSimilarWindows)
{
    VideoParams p;
    p.height = 24;
    p.width = 24;
    p.framesPerWindow = 4;
    p.objects = 1;
    p.objectScale = 0.2;
    p.pixelNoise = 0.0f;
    p.sceneCutProb = 0.0;
    VideoWindowGenerator g(p, 32);
    const Tensor w1 = g.next();
    const Tensor w2 = g.next();
    // With a static background and one small object, most pixels are
    // bitwise identical across consecutive windows.
    EXPECT_GT(exactMatchFraction(w1, w2), 0.8);
}

TEST(VideoWindowGenerator, NoiseBreaksExactMatches)
{
    VideoParams p;
    p.height = 16;
    p.width = 16;
    p.framesPerWindow = 2;
    p.pixelNoise = 0.01f;
    VideoWindowGenerator g(p, 33);
    const Tensor w1 = g.next();
    const Tensor w2 = g.next();
    EXPECT_LT(exactMatchFraction(w1, w2), 0.2);
    // ...but windows stay numerically close (small frames make the
    // moving object a large relative share).
    EXPECT_LT(relativeDifference(w2, w1), 0.35);
}

TEST(DrivingFrameGenerator, ShapeAndRange)
{
    DrivingParams p;
    DrivingFrameGenerator g(p, 41);
    const Tensor f = g.next();
    EXPECT_EQ(f.shape(), Shape({3, 66, 200}));
    for (int64_t i = 0; i < f.numel(); ++i) {
        EXPECT_GE(f[i], 0.0f);
        EXPECT_LE(f[i], 1.0f);
    }
}

TEST(DrivingFrameGenerator, ConsecutiveFramesSimilar)
{
    DrivingParams p;
    DrivingFrameGenerator g(p, 42);
    Tensor prev = g.next();
    double rel = 0.0;
    for (int i = 0; i < 20; ++i) {
        const Tensor cur = g.next();
        rel += relativeDifference(cur, prev);
        prev = cur;
    }
    EXPECT_LT(rel / 20, 0.15);
}

TEST(DrivingFrameGenerator, LaneOffsetBounded)
{
    DrivingParams p;
    DrivingFrameGenerator g(p, 43);
    for (int i = 0; i < 300; ++i) {
        g.next();
        EXPECT_LE(std::abs(g.laneOffset()), 8.0);
    }
}

TEST(DrivingFrameGenerator, SceneHasSkyRoadStructure)
{
    DrivingParams p;
    p.pixelNoise = 0.0f;
    DrivingFrameGenerator g(p, 44);
    const Tensor f = g.next();
    // Sky (top rows) is bluer than the road surface (bottom rows,
    // probed off the white center-line marker).
    const float sky_blue = f.at({2, 2, 100});
    const float road_blue = f.at({2, 60, 130});
    EXPECT_GT(sky_blue, road_blue);
}

} // namespace
} // namespace reuse
