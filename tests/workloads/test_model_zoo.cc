/** @file Unit tests for the four Table-I network topologies. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"
#include "workloads/model_zoo.h"

namespace reuse {
namespace {

TEST(ModelZoo, KaldiShapesMatchTableI)
{
    Rng rng(1);
    const auto bundle = buildKaldi(rng);
    const Network &net = *bundle.network;
    EXPECT_EQ(net.inputShape(), Shape({360}));
    EXPECT_EQ(net.outputShape(), Shape({3482}));
    EXPECT_FALSE(net.isRecurrent());
    // Table I: FC dims 360-360, 360-2000, 400-2000 x3, 400-3482.
    const auto shapes = net.layerInputShapes();
    int fc_seen = 0;
    for (size_t li = 0; li < net.layerCount(); ++li) {
        if (net.layer(li).kind() != LayerKind::FullyConnected)
            continue;
        const auto &fc =
            static_cast<const FullyConnectedLayer &>(net.layer(li));
        switch (fc_seen) {
          case 0:
            EXPECT_EQ(fc.inputs(), 360);
            EXPECT_EQ(fc.outputs(), 360);
            break;
          case 1:
            EXPECT_EQ(fc.inputs(), 360);
            EXPECT_EQ(fc.outputs(), 2000);
            break;
          case 5:
            EXPECT_EQ(fc.inputs(), 400);
            EXPECT_EQ(fc.outputs(), 3482);
            break;
          default:
            EXPECT_EQ(fc.inputs(), 400);
            EXPECT_EQ(fc.outputs(), 2000);
            break;
        }
        EXPECT_EQ(shapes[li].numel(), fc.inputs());
        ++fc_seen;
    }
    EXPECT_EQ(fc_seen, 6);
    // ~18 MB of weights (Table I header).
    const double mb = static_cast<double>(net.weightBytes()) /
                      (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 18.0, 2.0);
    // Quantization applies to FC3..FC6 (4 layers).
    EXPECT_EQ(bundle.quantizedLayers.size(), 4u);
    EXPECT_EQ(bundle.clusters, 16);
}

TEST(ModelZoo, KaldiForwardRuns)
{
    Rng rng(2);
    const auto bundle = buildKaldi(rng);
    Tensor in(Shape({360}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    const Tensor out = bundle.network->forward(in);
    EXPECT_EQ(out.numel(), 3482);
    // Softmax output sums to 1.
    EXPECT_NEAR(out.sum(), 1.0, 1e-4);
}

TEST(ModelZoo, EesenShapesMatchTableI)
{
    Rng rng(3);
    const auto bundle = buildEesen(rng);
    const Network &net = *bundle.network;
    EXPECT_TRUE(net.isRecurrent());
    EXPECT_EQ(net.inputShape(), Shape({120}));
    EXPECT_EQ(net.outputShape(), Shape({50}));
    // 5 BiLSTM layers with 320 cells each.
    int lstm_seen = 0;
    for (size_t li = 0; li < net.layerCount(); ++li) {
        if (net.layer(li).kind() != LayerKind::BiLstm)
            continue;
        const auto &l =
            static_cast<const BiLstmLayer &>(net.layer(li));
        EXPECT_EQ(l.cellDim(), 320);
        EXPECT_EQ(l.inputDim(), lstm_seen == 0 ? 120 : 640);
        EXPECT_EQ(l.outputDim(), 640);
        ++lstm_seen;
    }
    EXPECT_EQ(lstm_seen, 5);
    const double mb = static_cast<double>(net.weightBytes()) /
                      (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 42.0, 4.0);
    EXPECT_EQ(bundle.quantizedLayers.size(), 5u);
    EXPECT_EQ(bundle.clusters, 16);
}

TEST(ModelZoo, C3DFullScaleShapesMatchTableI)
{
    Rng rng(4);
    const auto bundle = buildC3D(rng, 1);
    const Network &net = *bundle.network;
    EXPECT_EQ(net.inputShape(), Shape({3, 16, 112, 112}));
    EXPECT_EQ(net.outputShape(), Shape({101}));
    // FC1 input must be 8192 = 512 x 1 x 4 x 4 (Table I).
    for (size_t li = 0; li < net.layerCount(); ++li) {
        if (net.layer(li).kind() == LayerKind::FullyConnected) {
            const auto &fc = static_cast<const FullyConnectedLayer &>(
                net.layer(li));
            EXPECT_EQ(fc.inputs(), 8192);
            EXPECT_EQ(fc.outputs(), 4096);
            break;
        }
    }
    const double mb = static_cast<double>(net.weightBytes()) /
                      (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 300.0, 30.0);
    // CONV1 excluded: CONV2..CONV8 + FC1..FC3 = 10 quantized layers.
    EXPECT_EQ(bundle.quantizedLayers.size(), 10u);
    EXPECT_EQ(bundle.clusters, 32);
}

TEST(ModelZoo, C3DScaledForwardRuns)
{
    Rng rng(5);
    const auto bundle = buildC3D(rng, 8);   // 14x14 frames
    Tensor in(bundle.network->inputShape());
    rng.fillUniform(in.data(), 0.0f, 1.0f);
    const Tensor out = bundle.network->forward(in);
    EXPECT_EQ(out.numel(), 101);
    EXPECT_NEAR(out.sum(), 1.0, 1e-4);
}

TEST(ModelZoo, AutopilotShapesMatchTableI)
{
    Rng rng(6);
    const auto bundle = buildAutopilot(rng);
    const Network &net = *bundle.network;
    EXPECT_EQ(net.inputShape(), Shape({3, 66, 200}));
    EXPECT_EQ(net.outputShape(), Shape({1}));
    const auto shapes = net.layerInputShapes();
    // Table I conv output dims.
    const std::vector<Shape> expected_conv_outs = {
        Shape({24, 31, 98}), Shape({36, 14, 47}), Shape({48, 5, 22}),
        Shape({64, 3, 20}), Shape({64, 1, 18})};
    size_t conv_seen = 0;
    for (size_t li = 0; li < net.layerCount(); ++li) {
        if (net.layer(li).kind() != LayerKind::Conv2D)
            continue;
        EXPECT_EQ(net.layer(li).outputShape(shapes[li]),
                  expected_conv_outs[conv_seen])
            << net.layer(li).name();
        ++conv_seen;
    }
    EXPECT_EQ(conv_seen, 5u);
    const double mb = static_cast<double>(net.weightBytes()) /
                      (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 6.3, 1.0);
    // CONV1..FC4 quantized (9 layers); FC5 skipped.
    EXPECT_EQ(bundle.quantizedLayers.size(), 9u);
    EXPECT_EQ(bundle.clusters, 32);
}

TEST(ModelZoo, AutopilotForwardRuns)
{
    Rng rng(7);
    const auto bundle = buildAutopilot(rng);
    Tensor in(Shape({3, 66, 200}));
    rng.fillUniform(in.data(), 0.0f, 1.0f);
    const Tensor out = bundle.network->forward(in);
    EXPECT_EQ(out.numel(), 1);
    // atan output is bounded.
    EXPECT_LT(std::abs(out[0]), 1.5708f);
}

TEST(ModelZoo, QuantizedLayersAreReusable)
{
    Rng rng(8);
    for (const auto &name : modelZooNames()) {
        ModelBundle bundle;
        if (name == "Kaldi")
            bundle = buildKaldi(rng);
        else if (name == "EESEN")
            bundle = buildEesen(rng);
        else if (name == "C3D")
            bundle = buildC3D(rng, 8);
        else
            bundle = buildAutopilot(rng);
        for (size_t li : bundle.quantizedLayers) {
            EXPECT_TRUE(bundle.network->layer(li).isReusable())
                << name << " layer " << li;
        }
    }
}

TEST(ModelZoo, NamesListedInPaperOrder)
{
    const auto names = modelZooNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "Kaldi");
    EXPECT_EQ(names[3], "AutoPilot");
}

} // namespace
} // namespace reuse
