/**
 * @file
 * Bit-exactness fuzz suite for the hand-written SIMD kernels.
 *
 * Every compiled-and-runnable implementation family (blocked, AVX2,
 * AVX-512, NEON) is compared against the scalar reference — which
 * defines the floating-point contract — across odd sizes, misaligned
 * tails, 0%/100% change densities and near-match radii.  All
 * comparisons are on float *bits*, not tolerances: the families must
 * agree exactly.  CI reruns this binary with REUSE_KERNELS forced to
 * each family so the dispatched entry points get the same coverage.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "kernels/change_list.h"
#include "kernels/cpu_features.h"
#include "kernels/delta_kernels.h"
#include "kernels/dispatch.h"
#include "kernels/quant_scan.h"

namespace reuse {
namespace kernels {
namespace {

/** Families to fuzz against the scalar reference. */
const KernelArch kSimdArchs[] = {KernelArch::Blocked,
                                 KernelArch::Neon, KernelArch::Avx2,
                                 KernelArch::Avx512};

/** Bit-exact comparison of two float buffers. */
::testing::AssertionResult
bitsEqual(const float *a, const float *b, int64_t n,
          const char *what)
{
    for (int64_t i = 0; i < n; ++i) {
        if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
            return ::testing::AssertionFailure()
                   << what << " differs at [" << i
                   << "]: " << a[i] << " vs " << b[i];
        }
    }
    return ::testing::AssertionSuccess();
}

/** Sizes covering sub-vector, odd, power-of-two and tail cases. */
const int64_t kSizes[] = {1,  2,  3,  7,  8,   9,   15,  16,  17,
                          31, 32, 33, 63, 64,  65,  100, 127, 129,
                          255, 256, 257, 1000};

QuantScanParams
makeParams(int32_t radius = 0)
{
    QuantScanParams q;
    q.step = 0.125f;
    q.min_index = -127;
    q.max_index = 127;
    q.radius = radius;
    return q;
}

/**
 * Builds a previous-frame index buffer and a current input whose
 * change density is roughly `density`: unchanged elements re-emit
 * the previous centroid exactly, changed ones move by at least one
 * step (more than any tested radius would need is exercised via the
 * magnitude draw).
 */
void
makeScanCase(int64_t n, double density, const QuantScanParams &q,
             Rng &rng, AlignedVector<float> &input,
             AlignedVector<int32_t> &prev)
{
    input.assign(n + 4, 0.0f);
    prev.assign(n, 0);
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx =
            static_cast<int32_t>(rng.uniformInt(-100, 100));
        prev[i] = idx;
        if (rng.bernoulli(density)) {
            const int32_t move =
                static_cast<int32_t>(rng.uniformInt(1, 9)) *
                (rng.bernoulli(0.5) ? 1 : -1);
            input[i] = quantCentroid(q, idx + move);
        } else {
            input[i] = quantCentroid(q, idx);
        }
    }
}

/** Asserts two scans produced bit-identical results and state. */
void
expectScansEqual(const ScanResult &want, const ChangeList &want_out,
                 const AlignedVector<int32_t> &want_prev,
                 const ScanResult &got, const ChangeList &got_out,
                 const AlignedVector<int32_t> &got_prev,
                 KernelArch arch)
{
    SCOPED_TRACE(std::string("arch=") + archName(arch));
    ASSERT_EQ(got.changed, want.changed);
    ASSERT_EQ(got.near_matched, want.near_matched);
    ASSERT_EQ(got_out.size(), want_out.size());
    for (size_t c = 0; c < want_out.size(); ++c) {
        ASSERT_EQ(got_out.position(c), want_out.position(c))
            << "change " << c;
        ASSERT_EQ(std::memcmp(&got_out.deltas()[c],
                              &want_out.deltas()[c], sizeof(float)),
                  0)
            << "delta " << c;
    }
    ASSERT_EQ(got_prev, want_prev);
}

class SimdScan : public ::testing::TestWithParam<KernelArch>
{
};

TEST_P(SimdScan, MatchesScalarAcrossSizesAndDensities)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    Rng rng(0xf022);
    for (const int64_t n : kSizes) {
        for (const double density : {0.0, 0.1, 0.5, 1.0}) {
            for (const int32_t radius : {0, 1, 3}) {
                const QuantScanParams q = makeParams(radius);
                AlignedVector<float> input;
                AlignedVector<int32_t> prev;
                makeScanCase(n, density, q, rng, input, prev);

                AlignedVector<int32_t> prev_ref = prev;
                ChangeList ref;
                const ScanResult want =
                    scanChanges(input.data(), n, q, prev_ref.data(),
                                ref, KernelArch::Scalar);

                AlignedVector<int32_t> prev_got = prev;
                ChangeList got;
                const ScanResult have =
                    scanChanges(input.data(), n, q, prev_got.data(),
                                got, arch);

                SCOPED_TRACE("n=" + std::to_string(n) + " density=" +
                             std::to_string(density) + " radius=" +
                             std::to_string(radius));
                expectScansEqual(want, ref, prev_ref, have, got,
                                 prev_got, arch);
            }
        }
    }
}

TEST_P(SimdScan, MatchesScalarOnMisalignedInput)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    Rng rng(0xa119);
    const QuantScanParams q = makeParams();
    for (const int64_t n : {7, 33, 100, 257}) {
        for (const int64_t offset : {1, 2, 3}) {
            AlignedVector<float> input;
            AlignedVector<int32_t> prev;
            makeScanCase(n + offset, 0.3, q, rng, input, prev);
            // Scan through a deliberately misaligned input pointer
            // (and a misaligned tail of the index buffer).
            const float *in = input.data() + offset;
            int32_t *pv = prev.data() + offset;

            AlignedVector<int32_t> prev_ref(pv, pv + n);
            ChangeList ref;
            const ScanResult want = scanChanges(
                in, n, q, prev_ref.data(), ref, KernelArch::Scalar);

            std::vector<int32_t> prev_got(pv, pv + n);
            ChangeList got;
            const ScanResult have =
                scanChanges(in, n, q, prev_got.data(), got, arch);

            SCOPED_TRACE("n=" + std::to_string(n) + " offset=" +
                         std::to_string(offset));
            ASSERT_EQ(have.changed, want.changed);
            ASSERT_EQ(have.near_matched, want.near_matched);
            ASSERT_EQ(got.size(), ref.size());
            for (size_t c = 0; c < ref.size(); ++c) {
                ASSERT_EQ(got.position(c), ref.position(c));
                ASSERT_EQ(got.delta(c), ref.delta(c));
            }
            for (int64_t i = 0; i < n; ++i)
                ASSERT_EQ(prev_got[i], prev_ref[i]);
        }
    }
}

TEST_P(SimdScan, NanInputsClampIdentically)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    const QuantScanParams q = makeParams();
    AlignedVector<float> input = {
        std::nanf(""), 0.5f, -std::nanf(""), 1e30f, -1e30f,
        0.0f,          0.1f, -0.1f,          2.0f,  -2.0f};
    const int64_t n = static_cast<int64_t>(input.size());
    AlignedVector<int32_t> prev_ref(n, 3), prev_got(n, 3);
    ChangeList ref, got;
    const ScanResult want = scanChanges(
        input.data(), n, q, prev_ref.data(), ref, KernelArch::Scalar);
    const ScanResult have =
        scanChanges(input.data(), n, q, prev_got.data(), got, arch);
    expectScansEqual(want, ref, prev_ref, have, got, prev_got, arch);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, SimdScan, ::testing::ValuesIn(kSimdArchs),
    [](const ::testing::TestParamInfo<KernelArch> &info) {
        return archName(info.param);
    });

// ---------------------------------------------------------------
// Near-match semantics (verified against the scalar reference, so
// by the scan equivalence above they hold for every family).
// ---------------------------------------------------------------

TEST(NearMatch, RadiusZeroEmitsEveryIndexMove)
{
    const QuantScanParams q = makeParams(0);
    AlignedVector<float> input = {quantCentroid(q, 1),
                                  quantCentroid(q, 5),
                                  quantCentroid(q, -2)};
    AlignedVector<int32_t> prev = {0, 5, -2};
    ChangeList out;
    const ScanResult r = scanChanges(input.data(), 3, q, prev.data(),
                                     out, KernelArch::Scalar);
    EXPECT_EQ(r.changed, 1);
    EXPECT_EQ(r.near_matched, 0);
    EXPECT_EQ(prev[0], 1);
}

TEST(NearMatch, WithinRadiusKeepsRepresentativeAndCounts)
{
    const QuantScanParams q = makeParams(2);
    // Moves of 0, 1, 2 (within), 3 (beyond) and -2 (within).
    AlignedVector<float> input = {
        quantCentroid(q, 10), quantCentroid(q, 11),
        quantCentroid(q, 12), quantCentroid(q, 13),
        quantCentroid(q, 8)};
    AlignedVector<int32_t> prev = {10, 10, 10, 10, 10};
    ChangeList out;
    const ScanResult r = scanChanges(input.data(), 5, q, prev.data(),
                                     out, KernelArch::Scalar);
    EXPECT_EQ(r.changed, 1);
    EXPECT_EQ(r.near_matched, 3);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.position(0), 3);
    // Only the beyond-radius element updates its representative.
    EXPECT_EQ(prev[0], 10);
    EXPECT_EQ(prev[1], 10);
    EXPECT_EQ(prev[2], 10);
    EXPECT_EQ(prev[3], 13);
    EXPECT_EQ(prev[4], 10);
}

TEST(NearMatch, RepresentativeErrorStaysWithinRadiusTimesStep)
{
    // Fuzz: after any number of frames, every element's buffered
    // centroid is within radius * step of its current quantized
    // value — the representative cannot drift further because any
    // larger move is emitted as a change.
    const int32_t radius = 3;
    const QuantScanParams q = makeParams(radius);
    const int64_t n = 64;
    Rng rng(0xb0b);
    AlignedVector<float> input(n);
    AlignedVector<int32_t> prev(n, 0);
    ChangeList out;
    for (int frame = 0; frame < 50; ++frame) {
        for (int64_t i = 0; i < n; ++i)
            input[i] = rng.uniform(-8.0f, 8.0f);
        scanChanges(input.data(), n, q, prev.data(), out,
                    KernelArch::Scalar);
        for (int64_t i = 0; i < n; ++i) {
            const int32_t cur = quantIndex(q, input[i]);
            ASSERT_LE(std::abs(cur - prev[i]), radius)
                << "frame " << frame << " element " << i;
            ASSERT_LE(std::abs(quantCentroid(q, cur) -
                               quantCentroid(q, prev[i])),
                      radius * q.step + 1e-6f);
        }
    }
}

TEST(NearMatch, DriftShareIsZeroAtRadiusZeroAndScalesWithCount)
{
    const QuantScanParams q0 = makeParams(0);
    EXPECT_EQ(nearMatchDriftShare(q0, 100), 0.0);
    const QuantScanParams q2 = makeParams(2);
    EXPECT_EQ(nearMatchDriftShare(q2, 0), 0.0);
    const double one = nearMatchDriftShare(q2, 1);
    EXPECT_GT(one, 0.0);
    EXPECT_DOUBLE_EQ(nearMatchDriftShare(q2, 10), 10 * one);
}

// ---------------------------------------------------------------
// Delta-apply kernels.
// ---------------------------------------------------------------

class SimdApply : public ::testing::TestWithParam<KernelArch>
{
};

TEST_P(SimdApply, MatchesScalarAcrossSizesAndDensities)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    DeltaDispatch dispatch;
    dispatch.arch = arch;
    dispatch.parallel_mac_threshold = -1;  // single-threaded
    Rng rng(0x4ea1);
    for (const int64_t m : kSizes) {
        const int64_t n = 24;
        AlignedVector<float> weights(n * m);
        rng.fillGaussian(weights, 0.0f, 1.0f);
        for (const double density : {0.0, 0.1, 0.5, 1.0}) {
            ChangeList changes;
            for (int64_t i = 0; i < n; ++i) {
                if (density >= 1.0 || rng.bernoulli(density))
                    changes.push(static_cast<int32_t>(i),
                                 rng.uniform(-2.0f, 2.0f));
            }
            AlignedVector<float> ref(m);
            rng.fillGaussian(ref, 0.0f, 1.0f);
            AlignedVector<float> got(ref);
            applyDeltasScalar(changes, weights.data(), m, ref.data());
            applyDeltas(changes, weights.data(), m, got.data(),
                        dispatch);
            SCOPED_TRACE("m=" + std::to_string(m) + " density=" +
                         std::to_string(density));
            EXPECT_TRUE(bitsEqual(got.data(), ref.data(), m, "out"));
        }
    }
}

TEST_P(SimdApply, MatchesScalarOnMisalignedOutput)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    DeltaDispatch dispatch;
    dispatch.arch = arch;
    dispatch.parallel_mac_threshold = -1;
    Rng rng(0x0ff5);
    for (const int64_t m : {9, 33, 100, 257}) {
        for (const int64_t offset : {1, 2, 3}) {
            const int64_t n = 8;
            AlignedVector<float> weights(n * m + offset);
            rng.fillGaussian(weights, 0.0f, 1.0f);
            ChangeList changes;
            for (int64_t i = 0; i < n; ++i)
                changes.push(static_cast<int32_t>(i),
                             rng.uniform(-2.0f, 2.0f));
            AlignedVector<float> ref(m + offset), got;
            rng.fillGaussian(ref, 0.0f, 1.0f);
            got = ref;
            // Both weight and output pointers off cache-line base.
            applyDeltasScalar(changes, weights.data() + offset, m,
                              ref.data() + offset);
            applyDeltas(changes, weights.data() + offset, m,
                        got.data() + offset, dispatch);
            SCOPED_TRACE("m=" + std::to_string(m) + " offset=" +
                         std::to_string(offset));
            EXPECT_TRUE(bitsEqual(got.data() + offset,
                                  ref.data() + offset, m, "out"));
        }
    }
}

TEST_P(SimdApply, ThreadedApplyIsBitExact)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    DeltaDispatch dispatch;
    dispatch.arch = arch;
    dispatch.parallel_mac_threshold = 1;  // always thread
    Rng rng(0x7eaded);
    const int64_t n = 32;
    const int64_t m = 5000;  // several chunks
    AlignedVector<float> weights(n * m);
    rng.fillGaussian(weights, 0.0f, 1.0f);
    ChangeList changes;
    for (int64_t i = 0; i < n; i += 2)
        changes.push(static_cast<int32_t>(i),
                     rng.uniform(-2.0f, 2.0f));
    AlignedVector<float> ref(m), got;
    rng.fillGaussian(ref, 0.0f, 1.0f);
    got = ref;
    applyDeltasScalar(changes, weights.data(), m, ref.data());
    applyDeltas(changes, weights.data(), m, got.data(), dispatch);
    EXPECT_TRUE(bitsEqual(got.data(), ref.data(), m, "threaded out"));
}

TEST_P(SimdApply, GemvMatchesScalar)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    DeltaDispatch dispatch;
    dispatch.arch = arch;
    dispatch.parallel_mac_threshold = -1;
    Rng rng(0x93e4);
    for (const int64_t m : {1, 7, 16, 33, 100, 257}) {
        const int64_t n = 19;
        AlignedVector<float> weights(n * m), biases(m), input(n);
        rng.fillGaussian(weights, 0.0f, 1.0f);
        rng.fillGaussian(biases, 0.0f, 1.0f);
        for (int64_t i = 0; i < n; ++i)
            input[i] = rng.bernoulli(0.3)
                           ? 0.0f
                           : rng.uniform(-1.0f, 1.0f);
        AlignedVector<float> ref(m), got(m);
        gemvScalar(input.data(), n, weights.data(), biases.data(), m,
                   ref.data());
        gemv(input.data(), n, weights.data(), biases.data(), m,
             got.data(), dispatch);
        SCOPED_TRACE("m=" + std::to_string(m));
        EXPECT_TRUE(bitsEqual(got.data(), ref.data(), m, "gemv"));
    }
}

TEST_P(SimdApply, Conv2dMatchesScalar)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    DeltaDispatch dispatch;
    dispatch.arch = arch;
    dispatch.parallel_mac_threshold = -1;
    Rng rng(0xc02d);
    for (const int64_t co : {1, 3, 16, 17, 33}) {
        Conv2dGeometry g;
        g.in_h = 9;
        g.in_w = 11;
        g.kernel = 3;
        g.stride = 2;
        g.out_channels = co;
        g.out_h = (g.in_h - g.kernel) / g.stride + 1;
        g.out_w = (g.in_w - g.kernel) / g.stride + 1;
        const int64_t in_c = 4;
        AlignedVector<float> weights(in_c * g.kernel * g.kernel * co);
        rng.fillGaussian(weights, 0.0f, 1.0f);
        ChangeList changes;
        const int64_t in_n = in_c * g.in_h * g.in_w;
        for (int64_t i = 0; i < in_n; ++i) {
            if (rng.bernoulli(0.25))
                changes.push(static_cast<int32_t>(i),
                             rng.uniform(-1.0f, 1.0f));
        }
        const int64_t out_n = co * g.out_h * g.out_w;
        AlignedVector<float> ref(out_n), got;
        rng.fillGaussian(ref, 0.0f, 1.0f);
        got = ref;
        applyConvDeltas2dScalar(changes, g, weights.data(),
                                ref.data());
        applyConvDeltas2d(changes, g, weights.data(), got.data(),
                          dispatch);
        SCOPED_TRACE("out_channels=" + std::to_string(co));
        EXPECT_TRUE(
            bitsEqual(got.data(), ref.data(), out_n, "conv2d"));
    }
}

TEST_P(SimdApply, Conv3dMatchesScalar)
{
    const KernelArch arch = GetParam();
    if (!archCompiled(arch) || !archRunnable(arch))
        GTEST_SKIP() << archName(arch) << " not available";
    DeltaDispatch dispatch;
    dispatch.arch = arch;
    dispatch.parallel_mac_threshold = -1;
    Rng rng(0xc03d);
    for (const int64_t co : {1, 16, 21}) {
        Conv3dGeometry g;
        g.in_d = 4;
        g.in_h = 6;
        g.in_w = 7;
        g.kernel = 3;
        g.pad = 1;
        g.out_channels = co;
        g.out_d = g.in_d + 2 * g.pad - g.kernel + 1;
        g.out_h = g.in_h + 2 * g.pad - g.kernel + 1;
        g.out_w = g.in_w + 2 * g.pad - g.kernel + 1;
        const int64_t in_c = 3;
        AlignedVector<float> weights(in_c * g.kernel * g.kernel *
                                     g.kernel * co);
        rng.fillGaussian(weights, 0.0f, 1.0f);
        ChangeList changes;
        const int64_t in_n = in_c * g.in_d * g.in_h * g.in_w;
        for (int64_t i = 0; i < in_n; ++i) {
            if (rng.bernoulli(0.25))
                changes.push(static_cast<int32_t>(i),
                             rng.uniform(-1.0f, 1.0f));
        }
        const int64_t out_n = co * g.out_d * g.out_h * g.out_w;
        AlignedVector<float> ref(out_n), got;
        rng.fillGaussian(ref, 0.0f, 1.0f);
        got = ref;
        applyConvDeltas3dScalar(changes, g, weights.data(),
                                ref.data());
        applyConvDeltas3d(changes, g, weights.data(), got.data(),
                          dispatch);
        SCOPED_TRACE("out_channels=" + std::to_string(co));
        EXPECT_TRUE(
            bitsEqual(got.data(), ref.data(), out_n, "conv3d"));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, SimdApply, ::testing::ValuesIn(kSimdArchs),
    [](const ::testing::TestParamInfo<KernelArch> &info) {
        return archName(info.param);
    });

// ---------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------

TEST(Dispatch, ScalarIsAlwaysAvailable)
{
    EXPECT_TRUE(archCompiled(KernelArch::Scalar));
    EXPECT_TRUE(archRunnable(KernelArch::Scalar));
    EXPECT_TRUE(archCompiled(KernelArch::Blocked));
    EXPECT_TRUE(archRunnable(KernelArch::Blocked));
}

TEST(Dispatch, BestSupportedArchIsCompiledAndRunnable)
{
    const KernelArch best = bestSupportedArch();
    EXPECT_TRUE(archCompiled(best));
    EXPECT_TRUE(archRunnable(best));
}

TEST(Dispatch, ParsesEveryArchNameAndRejectsUnknown)
{
    for (const KernelArch a :
         {KernelArch::Scalar, KernelArch::Blocked, KernelArch::Neon,
          KernelArch::Avx2, KernelArch::Avx512}) {
        KernelArch parsed;
        EXPECT_TRUE(parseKernelArch(archName(a), parsed))
            << archName(a);
        EXPECT_EQ(parsed, a);
    }
    KernelArch parsed = KernelArch::Avx2;
    EXPECT_FALSE(parseKernelArch("sse9000", parsed));
    EXPECT_EQ(parsed, KernelArch::Avx2);
}

TEST(Dispatch, DefaultRespectsForcedEnv)
{
    // CI reruns this binary with REUSE_KERNELS forced to each
    // family; when set (and supported) the process-wide default
    // must honour it.
    const char *env = std::getenv("REUSE_KERNELS");
    if (env == nullptr)
        GTEST_SKIP() << "REUSE_KERNELS not set";
    KernelArch forced;
    if (!parseKernelArch(env, forced) || !archCompiled(forced) ||
        !archRunnable(forced))
        GTEST_SKIP() << "REUSE_KERNELS=" << env
                     << " not supported here";
    EXPECT_EQ(defaultDispatch().arch, forced);
}

// ---------------------------------------------------------------
// Alignment guarantees (satellite: 64-byte hot-path buffers).
// ---------------------------------------------------------------

TEST(Alignment, ChangeListStorageIsCacheLineAligned)
{
    ChangeList changes;
    changes.push(0, 1.0f);
    EXPECT_TRUE(isBufferAligned(changes.positions()));
    EXPECT_TRUE(isBufferAligned(changes.deltas()));
}

TEST(Alignment, AlignedVectorIsCacheLineAligned)
{
    for (const int64_t n : {1, 7, 100, 1000}) {
        AlignedVector<float> v(n);
        EXPECT_TRUE(isBufferAligned(v.data())) << n;
        AlignedVector<int32_t> w(n);
        EXPECT_TRUE(isBufferAligned(w.data())) << n;
    }
}

} // namespace
} // namespace kernels
} // namespace reuse
