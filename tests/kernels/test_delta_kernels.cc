/**
 * @file
 * Bit-exactness tests for the blocked/vectorized delta kernels
 * against their scalar references, across odd sizes (outputs not a
 * multiple of the block or vector width), empty and full change
 * lists, and explicit thread-pool dispatch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "kernels/change_list.h"
#include "kernels/delta_kernels.h"
#include "kernels/thread_pool.h"
#include "quant/linear_quantizer.h"

namespace reuse {
namespace {

using kernels::ChangeList;
using kernels::Conv2dGeometry;
using kernels::Conv3dGeometry;
using kernels::DeltaDispatch;
using kernels::KernelThreadPool;

/** Builds a change list over [0, n) with roughly `fraction` changed. */
ChangeList
makeChanges(int64_t n, double fraction, Rng &rng)
{
    ChangeList changes;
    for (int64_t i = 0; i < n; ++i) {
        if (rng.bernoulli(fraction))
            changes.push(static_cast<int32_t>(i),
                         rng.gaussian(0.0f, 0.5f));
    }
    return changes;
}

std::vector<float>
randomVector(size_t n, Rng &rng)
{
    std::vector<float> v(n);
    rng.fillGaussian(v, 0.0f, 1.0f);
    return v;
}

// The output sizes deliberately include 1 (single-output layer),
// non-multiples of the SIMD width (3, 17, 33, 1023, 1025, 4099), an
// exact block (1024) and multiple blocks (2048).
const int64_t kOutputSizes[] = {1, 3, 17, 33, 1000, 1023, 1024, 1025,
                                2048, 4099};

TEST(ApplyDeltas, BlockedMatchesScalarBitExact)
{
    Rng rng(101);
    const int64_t n = 57;
    for (const int64_t m : kOutputSizes) {
        const std::vector<float> weights =
            randomVector(static_cast<size_t>(n * m), rng);
        const std::vector<float> base =
            randomVector(static_cast<size_t>(m), rng);
        for (const double fraction : {0.0, 0.1, 0.5, 1.0}) {
            const ChangeList changes = makeChanges(n, fraction, rng);
            std::vector<float> scalar = base;
            std::vector<float> blocked = base;
            kernels::applyDeltasScalar(changes, weights.data(), m,
                                       scalar.data());
            kernels::applyDeltasBlocked(changes, weights.data(), m,
                                        blocked.data());
            for (int64_t o = 0; o < m; ++o) {
                ASSERT_EQ(scalar[static_cast<size_t>(o)],
                          blocked[static_cast<size_t>(o)])
                    << "m=" << m << " fraction=" << fraction
                    << " o=" << o;
            }
        }
    }
}

TEST(ApplyDeltas, ThreadedMatchesScalarBitExact)
{
    Rng rng(102);
    KernelThreadPool pool(3);
    DeltaDispatch dispatch;
    dispatch.parallel_mac_threshold = 0;  // always thread
    dispatch.pool = &pool;
    const int64_t n = 73;
    for (const int64_t m : {1, 33, 1024, 4099, 9000}) {
        const std::vector<float> weights = randomVector(
            static_cast<size_t>(n) * static_cast<size_t>(m), rng);
        const std::vector<float> base =
            randomVector(static_cast<size_t>(m), rng);
        const ChangeList changes = makeChanges(n, 0.3, rng);
        std::vector<float> scalar = base;
        std::vector<float> threaded = base;
        kernels::applyDeltasScalar(changes, weights.data(), m,
                                   scalar.data());
        kernels::applyDeltas(changes, weights.data(), m,
                             threaded.data(), dispatch);
        for (int64_t o = 0; o < m; ++o) {
            ASSERT_EQ(scalar[static_cast<size_t>(o)],
                      threaded[static_cast<size_t>(o)])
                << "m=" << m << " o=" << o;
        }
    }
}

TEST(ApplyDeltas, ScalarDispatchMatchesBlocked)
{
    Rng rng(103);
    const int64_t n = 19;
    const int64_t m = 257;
    const std::vector<float> weights =
        randomVector(static_cast<size_t>(n * m), rng);
    const std::vector<float> base =
        randomVector(static_cast<size_t>(m), rng);
    const ChangeList changes = makeChanges(n, 0.4, rng);

    DeltaDispatch scalar_dispatch;
    scalar_dispatch.arch = kernels::KernelArch::Scalar;
    std::vector<float> a = base;
    std::vector<float> b = base;
    kernels::applyDeltas(changes, weights.data(), m, a.data(),
                         scalar_dispatch);
    kernels::applyDeltasBlocked(changes, weights.data(), m, b.data());
    for (int64_t o = 0; o < m; ++o)
        ASSERT_EQ(a[static_cast<size_t>(o)], b[static_cast<size_t>(o)]);
}

TEST(ApplyDeltas, EmptyChangeListIsANoOp)
{
    Rng rng(104);
    const int64_t m = 1025;
    const std::vector<float> weights =
        randomVector(static_cast<size_t>(4 * m), rng);
    const std::vector<float> base =
        randomVector(static_cast<size_t>(m), rng);
    ChangeList changes;
    std::vector<float> out = base;
    kernels::applyDeltasBlocked(changes, weights.data(), m, out.data());
    EXPECT_EQ(out, base);
}

TEST(Gemv, BlockedMatchesScalarBitExact)
{
    Rng rng(105);
    const int64_t n = 41;
    for (const int64_t m : kOutputSizes) {
        const std::vector<float> weights =
            randomVector(static_cast<size_t>(n * m), rng);
        const std::vector<float> biases =
            randomVector(static_cast<size_t>(m), rng);
        std::vector<float> input =
            randomVector(static_cast<size_t>(n), rng);
        // Sprinkle zeros: both forms must take the skip-zero path at
        // the same elements.
        for (size_t i = 0; i < input.size(); i += 3)
            input[i] = 0.0f;
        std::vector<float> scalar(static_cast<size_t>(m));
        std::vector<float> blocked(static_cast<size_t>(m));
        kernels::gemvScalar(input.data(), n, weights.data(),
                            biases.data(), m, scalar.data());
        kernels::gemvBlockedRange(input.data(), n, weights.data(),
                                  biases.data(), m, 0, m,
                                  blocked.data());
        for (int64_t o = 0; o < m; ++o) {
            ASSERT_EQ(scalar[static_cast<size_t>(o)],
                      blocked[static_cast<size_t>(o)])
                << "m=" << m << " o=" << o;
        }
    }
}

TEST(Gemv, ThreadedMatchesScalarBitExact)
{
    Rng rng(106);
    KernelThreadPool pool(2);
    DeltaDispatch dispatch;
    dispatch.parallel_mac_threshold = 0;
    dispatch.pool = &pool;
    const int64_t n = 64;
    const int64_t m = 4099;
    const std::vector<float> weights =
        randomVector(static_cast<size_t>(n * m), rng);
    const std::vector<float> biases =
        randomVector(static_cast<size_t>(m), rng);
    const std::vector<float> input =
        randomVector(static_cast<size_t>(n), rng);
    std::vector<float> scalar(static_cast<size_t>(m));
    std::vector<float> threaded(static_cast<size_t>(m));
    kernels::gemvScalar(input.data(), n, weights.data(), biases.data(),
                        m, scalar.data());
    kernels::gemv(input.data(), n, weights.data(), biases.data(), m,
                  threaded.data(), dispatch);
    for (int64_t o = 0; o < m; ++o)
        ASSERT_EQ(scalar[static_cast<size_t>(o)],
                  threaded[static_cast<size_t>(o)]);
}

TEST(ScanChanges, MatchesNaiveQuantizerLoop)
{
    Rng rng(107);
    const int64_t n = 513;
    LinearQuantizer quant(64, -2.0f, 2.0f);
    const kernels::QuantScanParams q = quant.scanParams();

    std::vector<float> prev = randomVector(static_cast<size_t>(n), rng);
    std::vector<int32_t> prev_indices(static_cast<size_t>(n));
    std::vector<int32_t> naive_indices(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        prev_indices[static_cast<size_t>(i)] =
            quant.index(prev[static_cast<size_t>(i)]);
        naive_indices[static_cast<size_t>(i)] =
            prev_indices[static_cast<size_t>(i)];
    }

    std::vector<float> next = prev;
    for (size_t i = 0; i < next.size(); i += 4)
        next[i] += rng.gaussian(0.0f, 0.5f);

    // Naive reference: the original interleaved comparison.
    std::vector<int32_t> want_positions;
    std::vector<float> want_deltas;
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx = quant.index(next[static_cast<size_t>(i)]);
        if (idx != naive_indices[static_cast<size_t>(i)]) {
            want_positions.push_back(static_cast<int32_t>(i));
            want_deltas.push_back(
                quant.centroid(idx) -
                quant.centroid(naive_indices[static_cast<size_t>(i)]));
            naive_indices[static_cast<size_t>(i)] = idx;
        }
    }

    ChangeList changes;
    const int64_t changed = kernels::scanChanges(
        next.data(), n, q, prev_indices.data(), changes).changed;
    EXPECT_EQ(changed, static_cast<int64_t>(want_positions.size()));
    ASSERT_EQ(changes.size(), want_positions.size());
    for (size_t c = 0; c < want_positions.size(); ++c)
        EXPECT_EQ(changes.position(c), want_positions[c])
            << "change " << c;
    for (size_t c = 0; c < want_deltas.size(); ++c)
        EXPECT_EQ(changes.delta(c), want_deltas[c]) << "change " << c;
    EXPECT_EQ(prev_indices, naive_indices);
}

TEST(ScanChanges, AllAndNoneChanged)
{
    Rng rng(108);
    const int64_t n = 100;
    LinearQuantizer quant(32, -1.0f, 1.0f);
    const kernels::QuantScanParams q = quant.scanParams();
    std::vector<float> input = randomVector(static_cast<size_t>(n), rng);
    std::vector<int32_t> prev_indices(static_cast<size_t>(n), 9999);

    ChangeList changes;
    EXPECT_EQ(kernels::scanChanges(input.data(), n, q,
                                   prev_indices.data(), changes)
                  .changed,
              n);
    // Second scan of the identical input: nothing changed.
    EXPECT_EQ(kernels::scanChanges(input.data(), n, q,
                                   prev_indices.data(), changes)
                  .changed,
              0);
    EXPECT_TRUE(changes.empty());
}

TEST(QuantizeWithIndices, MatchesQuantizer)
{
    Rng rng(109);
    const int64_t n = 321;
    LinearQuantizer quant(128, -3.0f, 3.0f);
    const std::vector<float> input =
        randomVector(static_cast<size_t>(n), rng);
    std::vector<int32_t> indices(static_cast<size_t>(n));
    std::vector<float> centroids(static_cast<size_t>(n));
    kernels::quantizeWithIndices(input.data(), n, quant.scanParams(),
                                 indices.data(), centroids.data());
    for (int64_t i = 0; i < n; ++i) {
        const size_t s = static_cast<size_t>(i);
        EXPECT_EQ(indices[s], quant.index(input[s])) << "i=" << i;
        EXPECT_EQ(centroids[s], quant.centroid(indices[s]))
            << "i=" << i;
    }
}

TEST(ConvDeltas2d, BlockedMatchesScalarBitExact)
{
    Rng rng(110);
    // Geometries chosen so out_channels is not a multiple of the
    // channel block (16): 1, 3, 17, 33.
    struct Case {
        int64_t c_in, h, w, c_out, kernel, stride;
    };
    const Case cases[] = {
        {1, 7, 7, 1, 3, 1},   {2, 9, 11, 3, 3, 2},
        {3, 12, 12, 17, 5, 1}, {2, 16, 16, 33, 3, 2},
    };
    for (const Case &c : cases) {
        Conv2dGeometry g;
        g.in_h = c.h;
        g.in_w = c.w;
        g.out_channels = c.c_out;
        g.out_h = (c.h - c.kernel) / c.stride + 1;
        g.out_w = (c.w - c.kernel) / c.stride + 1;
        g.kernel = c.kernel;
        g.stride = c.stride;
        const int64_t n = c.c_in * c.h * c.w;
        const std::vector<float> weights = randomVector(
            static_cast<size_t>(c.c_in * c.kernel * c.kernel * c.c_out),
            rng);
        const std::vector<float> base = randomVector(
            static_cast<size_t>(c.c_out * g.out_h * g.out_w), rng);
        for (const double fraction : {0.0, 0.2, 1.0}) {
            const ChangeList changes = makeChanges(n, fraction, rng);
            std::vector<float> scalar = base;
            std::vector<float> blocked = base;
            kernels::applyConvDeltas2dScalar(changes, g, weights.data(),
                                             scalar.data());
            kernels::applyConvDeltas2dBlocked(changes, g,
                                              weights.data(),
                                              blocked.data());
            ASSERT_EQ(scalar, blocked)
                << "c_out=" << c.c_out << " fraction=" << fraction;
        }
    }
}

TEST(ConvDeltas3d, BlockedMatchesScalarBitExact)
{
    Rng rng(111);
    struct Case {
        int64_t c_in, d, h, w, c_out, kernel, pad;
    };
    const Case cases[] = {
        {1, 4, 6, 6, 1, 3, 1},
        {2, 5, 7, 7, 3, 3, 0},
        {2, 6, 8, 8, 17, 3, 1},
    };
    for (const Case &c : cases) {
        Conv3dGeometry g;
        g.in_d = c.d;
        g.in_h = c.h;
        g.in_w = c.w;
        g.out_channels = c.c_out;
        g.out_d = c.d + 2 * c.pad - c.kernel + 1;
        g.out_h = c.h + 2 * c.pad - c.kernel + 1;
        g.out_w = c.w + 2 * c.pad - c.kernel + 1;
        g.kernel = c.kernel;
        g.pad = c.pad;
        const int64_t n = c.c_in * c.d * c.h * c.w;
        const std::vector<float> weights = randomVector(
            static_cast<size_t>(c.c_in * c.kernel * c.kernel *
                                c.kernel * c.c_out),
            rng);
        const std::vector<float> base = randomVector(
            static_cast<size_t>(c.c_out * g.out_d * g.out_h * g.out_w),
            rng);
        for (const double fraction : {0.0, 0.3, 1.0}) {
            const ChangeList changes = makeChanges(n, fraction, rng);
            std::vector<float> scalar = base;
            std::vector<float> blocked = base;
            kernels::applyConvDeltas3dScalar(changes, g, weights.data(),
                                             scalar.data());
            kernels::applyConvDeltas3dBlocked(changes, g,
                                              weights.data(),
                                              blocked.data());
            ASSERT_EQ(scalar, blocked)
                << "c_out=" << c.c_out << " fraction=" << fraction;
        }
    }
}

TEST(ChangeListStorage, ReleaseStorageFreesEverything)
{
    Rng rng(112);
    ChangeList changes;
    std::vector<float> input = randomVector(256, rng);
    std::vector<int32_t> prev(256, -777);
    kernels::scanChanges(input.data(), 256, {0.1f, -100, 100},
                         prev.data(), changes);
    EXPECT_GT(changes.memoryBytes(), 0);
    changes.releaseStorage();
    EXPECT_EQ(changes.memoryBytes(), 0);
    EXPECT_TRUE(changes.empty());
}

} // namespace
} // namespace reuse
