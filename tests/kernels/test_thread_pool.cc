/**
 * @file
 * Unit tests for the kernel thread pool: exactly-once chunk coverage,
 * deterministic chunk boundaries, inline fallback, and concurrent
 * callers (the latter primarily for TSan runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "kernels/thread_pool.h"

namespace reuse {
namespace {

using kernels::KernelThreadPool;

/** Runs a parallelFor and returns its sorted chunk boundaries. */
std::vector<std::pair<int64_t, int64_t>>
collectChunks(KernelThreadPool &pool, int64_t total, int64_t grain)
{
    std::mutex mutex;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.parallelFor(total, grain, [&](int64_t begin, int64_t end) {
        const std::lock_guard<std::mutex> lock(mutex);
        chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(KernelThreadPool, CoversEveryElementExactlyOnce)
{
    KernelThreadPool pool(3);
    const int64_t total = 10'007;  // prime: ragged last chunk
    std::vector<std::atomic<int>> hits(static_cast<size_t>(total));
    pool.parallelFor(total, 64, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i)
            hits[static_cast<size_t>(i)].fetch_add(
                1, std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < total; ++i)
        ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "i=" << i;
}

TEST(KernelThreadPool, ZeroWorkersRunsInline)
{
    KernelThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    const std::thread::id caller = std::this_thread::get_id();
    int64_t covered = 0;
    pool.parallelFor(1000, 128, [&](int64_t begin, int64_t end) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        covered += end - begin;
    });
    EXPECT_EQ(covered, 1000);
}

TEST(KernelThreadPool, ChunkBoundariesIndependentOfWorkerCount)
{
    KernelThreadPool inline_pool(0);
    KernelThreadPool threaded_pool(3);
    for (const int64_t total : {1, 63, 64, 65, 4096, 10'007}) {
        const auto a = collectChunks(inline_pool, total, 64);
        const auto b = collectChunks(threaded_pool, total, 64);
        EXPECT_EQ(a, b) << "total=" << total;
    }
}

TEST(KernelThreadPool, EmptyRangeRunsNothing)
{
    KernelThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, 64, [&](int64_t, int64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(KernelThreadPool, ConcurrentCallersSerializeCorrectly)
{
    // Several threads issue jobs against one pool at once; every job
    // must still cover its own range exactly once.  Exercises the
    // job-serialization path under TSan.
    KernelThreadPool pool(2);
    constexpr int kCallers = 4;
    constexpr int64_t kTotal = 2048;
    std::vector<std::vector<std::atomic<int>>> hits(kCallers);
    for (auto &h : hits) {
        std::vector<std::atomic<int>> fresh(kTotal);
        h.swap(fresh);
    }
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
        callers.emplace_back([&pool, &hits, c] {
            for (int round = 0; round < 8; ++round) {
                pool.parallelFor(kTotal, 32,
                                 [&hits, c](int64_t begin, int64_t end) {
                    for (int64_t i = begin; i < end; ++i)
                        hits[static_cast<size_t>(c)]
                            [static_cast<size_t>(i)].fetch_add(
                                1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (std::thread &t : callers)
        t.join();
    for (int c = 0; c < kCallers; ++c) {
        for (int64_t i = 0; i < kTotal; ++i) {
            ASSERT_EQ(hits[static_cast<size_t>(c)]
                          [static_cast<size_t>(i)].load(),
                      8)
                << "caller " << c << " i=" << i;
        }
    }
}

TEST(KernelThreadPool, GrainLargerThanTotalIsOneChunk)
{
    KernelThreadPool pool(2);
    const auto chunks = collectChunks(pool, 10, 1024);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].first, 0);
    EXPECT_EQ(chunks[0].second, 10);
}

} // namespace
} // namespace reuse
