/**
 * @file
 * Differential test oracle: runs the reuse path against a golden
 * from-scratch (or per-frame-refresh) execution over a whole frame
 * sequence and reports where and by how much the two diverge.
 *
 * The oracle is the correctness backbone of the fault tests: after a
 * fault is injected and the drift-guard / re-warm machinery has done
 * its job, the post-recovery frames must match the golden run
 * bit-exactly (in an exact-arithmetic domain) or within an epsilon
 * (general fp32).  Shared by the unit/property tests and the
 * tools/fault_campaign CLI.
 */

#ifndef REUSE_DNN_TESTS_SUPPORT_DIFF_ORACLE_H
#define REUSE_DNN_TESTS_SUPPORT_DIFF_ORACLE_H

#include <cstdint>
#include <vector>

#include "core/reuse_engine.h"
#include "tensor/tensor.h"

namespace reuse {
namespace testing {

/** Per-sequence comparison result of one differential run. */
struct OracleReport {
    /** Frames (or sequences) compared. */
    size_t frames = 0;
    /** Largest elementwise |a - b| across all frames. */
    float maxAbsDiff = 0.0f;
    /** Mean over frames of each frame's max |a - b|. */
    double meanAbsDiff = 0.0;
    /** Frames with any non-bit-identical element. */
    size_t mismatchedFrames = 0;
    /** Index of the first non-bit-identical frame (or frames). */
    size_t firstMismatchFrame = 0;
    /** Per-frame max |a - b|. */
    std::vector<float> frameMaxAbs;
    /** Per-frame bit-exactness. */
    std::vector<bool> frameBitExact;

    /** True when every frame matched bit-exactly. */
    bool allBitExact() const { return mismatchedFrames == 0; }

    /** True when every frame from `start` on matched bit-exactly. */
    bool bitExactFrom(size_t start) const
    {
        for (size_t i = start; i < frameBitExact.size(); ++i) {
            if (!frameBitExact[i])
                return false;
        }
        return true;
    }
};

/**
 * Feed-forward oracle: compares `outputs` (what the system under test
 * produced for `inputs`, in order) against a golden replay on a fresh
 * state of `engine`.  `resetsBefore` lists frame indices before which
 * the golden state is reset — pass the session's coldFrames (plus any
 * schedule-deterministic refreshes are handled by the engine itself,
 * since the golden replay uses the same config).
 */
OracleReport diffAgainstReplay(const ReuseEngine &engine,
                               const std::vector<Tensor> &inputs,
                               const std::vector<Tensor> &outputs,
                               const std::vector<uint64_t> &resetsBefore =
                                   {});

/**
 * Feed-forward oracle against a per-frame-refresh golden: each golden
 * frame executes from scratch on the quantized input (refreshPeriod=1
 * engine over the same network/plan), which is the paper's exact
 * semantics of "no reuse in quantized space".
 */
OracleReport diffAgainstScratch(const ReuseEngine &engine,
                                const std::vector<Tensor> &inputs,
                                const std::vector<Tensor> &outputs);

/**
 * Recurrent oracle: compares per-sequence outputs (flattened over
 * timesteps) of the system under test against a golden replay on a
 * fresh state.  reports one "frame" per sequence.
 */
OracleReport diffSequencesAgainstReplay(
    const ReuseEngine &engine,
    const std::vector<std::vector<Tensor>> &sequences,
    const std::vector<std::vector<Tensor>> &outputs);

} // namespace testing
} // namespace reuse

#endif // REUSE_DNN_TESTS_SUPPORT_DIFF_ORACLE_H
