/**
 * @file
 * Deterministic virtual clock for scheduler tests.
 *
 * Implements the serving runtime's Clock seam (src/serve/clock.h)
 * over an explicitly advanced counter: time moves only when a test
 * calls advance()/set(), so admission decisions, EDF ordering,
 * deadline misses and backoff hints are exactly reproducible — no
 * wall-clock sleeps, no flaky timing margins.  Combine with
 * StreamingServer::Config::manualDispatch (no worker threads; the
 * test pumps runOne()) for a fully deterministic single-threaded
 * scheduler harness.
 */

#ifndef REUSE_DNN_TESTS_SUPPORT_VIRTUAL_CLOCK_H
#define REUSE_DNN_TESTS_SUPPORT_VIRTUAL_CLOCK_H

#include <atomic>
#include <cstdint>

#include "serve/clock.h"

namespace reuse {
namespace testing {

/** Manually advanced Clock; thread-safe, monotone by construction. */
class VirtualClock final : public Clock
{
  public:
    /** Starts at `start_us` (default 0; origin is arbitrary). */
    explicit VirtualClock(int64_t start_us = 0) : now_(start_us) {}

    int64_t nowMicros() const override
    {
        return now_.load(std::memory_order_relaxed);
    }

    /** Moves time forward by `us` (>= 0) and returns the new now. */
    int64_t advance(int64_t us)
    {
        return now_.fetch_add(us, std::memory_order_relaxed) + us;
    }

    /** Jumps to an absolute timestamp (must not move backwards). */
    void set(int64_t us)
    {
        now_.store(us, std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> now_;
};

} // namespace testing
} // namespace reuse

#endif // REUSE_DNN_TESTS_SUPPORT_VIRTUAL_CLOCK_H
