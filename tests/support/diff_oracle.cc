#include "diff_oracle.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace reuse {
namespace testing {

namespace {

/** Folds one (golden, actual) frame pair into `report`. */
void
recordFrame(OracleReport &report, const Tensor &golden,
            const Tensor &actual)
{
    REUSE_ASSERT(golden.numel() == actual.numel(),
                 "oracle: frame size mismatch");
    const size_t frame = report.frames;
    const float *g = golden.data().data();
    const float *a = actual.data().data();
    const size_t n = static_cast<size_t>(golden.numel());

    float frame_max = 0.0f;
    for (size_t i = 0; i < n; ++i)
        frame_max = std::max(frame_max, std::fabs(g[i] - a[i]));
    const bool bit_exact =
        std::memcmp(g, a, n * sizeof(float)) == 0;

    report.frames += 1;
    report.frameMaxAbs.push_back(frame_max);
    report.frameBitExact.push_back(bit_exact);
    report.maxAbsDiff = std::max(report.maxAbsDiff, frame_max);
    report.meanAbsDiff += frame_max;
    if (!bit_exact) {
        if (report.mismatchedFrames == 0)
            report.firstMismatchFrame = frame;
        report.mismatchedFrames += 1;
    }
}

void
finish(OracleReport &report)
{
    if (report.frames > 0)
        report.meanAbsDiff /= static_cast<double>(report.frames);
}

OracleReport
diffAgainstEngine(const ReuseEngine &golden_engine,
                  const std::vector<Tensor> &inputs,
                  const std::vector<Tensor> &outputs,
                  const std::vector<uint64_t> &resets_before)
{
    REUSE_ASSERT(inputs.size() == outputs.size(),
                 "oracle: " << inputs.size() << " inputs vs "
                            << outputs.size() << " outputs");
    OracleReport report;
    ReuseState state = golden_engine.makeState();
    ExecutionTrace trace;
    size_t next_reset = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        while (next_reset < resets_before.size() &&
               resets_before[next_reset] < i)
            ++next_reset;
        if (next_reset < resets_before.size() &&
            resets_before[next_reset] == i)
            state.reset();
        const Tensor golden =
            golden_engine.execute(state, inputs[i], trace);
        recordFrame(report, golden, outputs[i]);
    }
    finish(report);
    return report;
}

} // namespace

OracleReport
diffAgainstReplay(const ReuseEngine &engine,
                  const std::vector<Tensor> &inputs,
                  const std::vector<Tensor> &outputs,
                  const std::vector<uint64_t> &resetsBefore)
{
    return diffAgainstEngine(engine, inputs, outputs, resetsBefore);
}

OracleReport
diffAgainstScratch(const ReuseEngine &engine,
                   const std::vector<Tensor> &inputs,
                   const std::vector<Tensor> &outputs)
{
    ReuseEngineConfig scratch_config;
    scratch_config.refreshPeriod = 1;
    ReuseEngine scratch(engine.network(), engine.plan(),
                        scratch_config);
    return diffAgainstEngine(scratch, inputs, outputs, {});
}

OracleReport
diffSequencesAgainstReplay(
    const ReuseEngine &engine,
    const std::vector<std::vector<Tensor>> &sequences,
    const std::vector<std::vector<Tensor>> &outputs)
{
    REUSE_ASSERT(sequences.size() == outputs.size(),
                 "oracle: sequence count mismatch");
    OracleReport report;
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    for (size_t s = 0; s < sequences.size(); ++s) {
        const std::vector<Tensor> golden =
            engine.executeSequence(state, sequences[s], trace);
        REUSE_ASSERT(golden.size() == outputs[s].size(),
                     "oracle: sequence " << s << " length mismatch");
        // One oracle "frame" per sequence: fold the per-timestep
        // outputs into a single concatenated comparison.
        float frame_max = 0.0f;
        bool bit_exact = true;
        for (size_t t = 0; t < golden.size(); ++t) {
            const float *g = golden[t].data().data();
            const float *a = outputs[s][t].data().data();
            REUSE_ASSERT(golden[t].numel() == outputs[s][t].numel(),
                         "oracle: timestep size mismatch");
            const size_t n = static_cast<size_t>(golden[t].numel());
            for (size_t i = 0; i < n; ++i) {
                frame_max = std::max(frame_max,
                                     std::fabs(g[i] - a[i]));
            }
            bit_exact = bit_exact &&
                        std::memcmp(g, a, n * sizeof(float)) == 0;
        }
        report.frames += 1;
        report.frameMaxAbs.push_back(frame_max);
        report.frameBitExact.push_back(bit_exact);
        report.maxAbsDiff = std::max(report.maxAbsDiff, frame_max);
        report.meanAbsDiff += frame_max;
        if (!bit_exact) {
            if (report.mismatchedFrames == 0)
                report.firstMismatchFrame = s;
            report.mismatchedFrames += 1;
        }
    }
    finish(report);
    return report;
}

} // namespace testing
} // namespace reuse
