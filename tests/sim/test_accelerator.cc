/** @file Unit tests for the top-level accelerator simulator. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"
#include "sim/accelerator.h"

namespace reuse {
namespace {

struct Fixture {
    Rng rng{81};
    Network net{"mlp", Shape({32})};
    QuantizationPlan plan;

    Fixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 32, 256));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 256, 64));
        initNetwork(net, rng);
        std::vector<Tensor> calib;
        for (int i = 0; i < 6; ++i) {
            Tensor t(Shape({32}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        const auto ranges = profileNetworkRanges(net, calib);
        plan = makePlan(net, ranges, 16, {0, 2});
    }

    std::vector<ExecutionTrace> traces(size_t frames, float sigma)
    {
        ReuseEngine engine(net, plan);
        std::vector<ExecutionTrace> out;
        Tensor x(Shape({32}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 32; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            engine.execute(x);
            out.push_back(engine.lastTrace());
        }
        return out;
    }
};

TEST(Accelerator, SimulateAccumulatesPerLayer)
{
    Fixture f;
    AcceleratorSim sim;
    const auto traces = f.traces(10, 0.1f);
    const auto result =
        sim.simulate(f.net, AccelMode::Reuse, traces);
    EXPECT_EQ(result.executions, 10);
    EXPECT_EQ(result.perLayer.size(), 3u);
    EXPECT_GT(result.cycles, 0.0);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_DOUBLE_EQ(result.seconds,
                     result.cycles / sim.params().frequencyHz);
    // Per-layer cycles sum to the total minus the initial DRAM load.
    double layer_cycles = 0.0;
    for (const auto &ev : result.perLayer)
        layer_cycles += ev.cycles;
    EXPECT_LE(layer_cycles, result.cycles + 1e-9);
}

TEST(Accelerator, InitialWeightLoadCharged)
{
    Fixture f;
    AcceleratorSim sim;
    const auto result =
        sim.simulate(f.net, AccelMode::Baseline, {});
    EXPECT_EQ(result.totals.dramWeightBytes,
              f.net.paramCount() * 4);
    EXPECT_GT(result.cycles, 0.0);
}

TEST(Accelerator, ReuseBeatsBaselineOnSimilarStream)
{
    Fixture f;
    AcceleratorSim sim;
    // Highly similar stream: tiny per-frame walk.
    const auto reuse_traces = f.traces(20, 0.02f);
    const auto reuse =
        sim.simulate(f.net, AccelMode::Reuse, reuse_traces);
    const auto baseline = sim.estimate(
        f.net, AccelMode::Baseline,
        std::vector<double>(f.net.layerCount(), -1.0), 20);
    EXPECT_GT(baseline.cycles, reuse.cycles);
}

TEST(Accelerator, EstimateBaselineMatchesFunctionalBaseline)
{
    // Synthetic baseline traces must match what a functional run
    // with a disabled plan produces.
    Fixture f;
    AcceleratorSim sim;
    ReuseEngine engine(f.net, QuantizationPlan(f.net));
    std::vector<ExecutionTrace> traces;
    Tensor x(Shape({32}), 0.5f);
    for (int i = 0; i < 3; ++i) {
        engine.execute(x);
        traces.push_back(engine.lastTrace());
    }
    const auto functional =
        sim.simulate(f.net, AccelMode::Baseline, traces);
    const auto estimated = sim.estimate(
        f.net, AccelMode::Baseline,
        std::vector<double>(f.net.layerCount(), -1.0), 3);
    EXPECT_DOUBLE_EQ(functional.cycles, estimated.cycles);
    EXPECT_EQ(functional.totals.fpMul, estimated.totals.fpMul);
    EXPECT_EQ(functional.totals.edramWeightBytes,
              estimated.totals.edramWeightBytes);
}

TEST(Accelerator, EstimateSpeedupTracksSimilarity)
{
    Fixture f;
    AcceleratorSim sim;
    std::vector<double> sims(f.net.layerCount(), -1.0);
    sims[0] = 0.9;
    sims[2] = 0.9;
    const auto baseline = sim.estimate(
        f.net, AccelMode::Baseline, sims, 50);
    const auto reuse =
        sim.estimate(f.net, AccelMode::Reuse, sims, 50);
    const double speedup = baseline.cycles / reuse.cycles;
    // 90% similarity on every FC layer: speedup should approach but
    // not exceed ~10x (first execution and compare stage temper it).
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 10.0);
}

TEST(Accelerator, EstimateMonotonicInSimilarity)
{
    Fixture f;
    AcceleratorSim sim;
    double prev_cycles = 1e300;
    for (double s : {0.0, 0.25, 0.5, 0.75, 0.95}) {
        std::vector<double> sims(f.net.layerCount(), -1.0);
        sims[0] = s;
        sims[2] = s;
        const auto r = sim.estimate(f.net, AccelMode::Reuse, sims, 20);
        EXPECT_LT(r.cycles, prev_cycles);
        prev_cycles = r.cycles;
    }
}

TEST(Accelerator, SynthesizedTraceShapes)
{
    Fixture f;
    std::vector<double> sims(f.net.layerCount(), -1.0);
    sims[0] = 0.5;
    const auto trace = synthesizeTrace(f.net, sims, false, 1);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_TRUE(trace[0].reuseEnabled);
    EXPECT_EQ(trace[0].inputsChanged, 16);
    EXPECT_EQ(trace[0].macsPerformed, trace[0].macsFull / 2);
    EXPECT_FALSE(trace[1].reuseEnabled);
    EXPECT_EQ(trace[2].macsPerformed, trace[2].macsFull);
}

TEST(Accelerator, FirstExecutionSynthesizedFromScratch)
{
    Fixture f;
    std::vector<double> sims(f.net.layerCount(), 0.9);
    const auto trace = synthesizeTrace(f.net, sims, true, 1);
    EXPECT_TRUE(trace[0].firstExecution);
    EXPECT_EQ(trace[0].macsPerformed, trace[0].macsFull);
}

} // namespace
} // namespace reuse
