/** @file Unit tests for weights-buffer residency planning. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"
#include "sim/weights_residency.h"

namespace reuse {
namespace {

TEST(Residency, SmallNetworkFullyResident)
{
    Network net("small", Shape({100}));
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", 100, 100));
    AcceleratorParams p;
    const auto plan = planResidency(net, p);
    EXPECT_TRUE(plan.fullyResident);
    EXPECT_TRUE(plan.resident[0]);
    EXPECT_EQ(plan.initialLoadBytes, net.paramCount() * 4);
    EXPECT_EQ(plan.perExecutionStreamBytes, 0);
}

TEST(Residency, OversizedLayersSpill)
{
    Network net("big", Shape({4096}));
    // Two layers of ~67 MB each against a 36 MB buffer: the first is
    // kept resident greedily? No -- 67 MB alone exceeds 36 MB, so
    // both spill.
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", 4096, 4096));
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC2", 4096, 4096));
    AcceleratorParams p;
    const auto plan = planResidency(net, p);
    EXPECT_FALSE(plan.fullyResident);
    EXPECT_FALSE(plan.resident[0]);
    EXPECT_FALSE(plan.resident[1]);
    EXPECT_EQ(plan.perExecutionStreamBytes, net.paramCount() * 4);
}

TEST(Residency, GreedyFrontToBack)
{
    Network net("mix", Shape({2048}));
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", 2048, 2048));
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC2", 2048, 2048));
    AcceleratorParams p;
    // Buffer fits exactly one 2048x2048 fp32 layer (16 MB + bias).
    p.weightsBufferBytes = 17ll * 1024 * 1024;
    const auto plan = planResidency(net, p);
    EXPECT_TRUE(plan.resident[0]);
    EXPECT_FALSE(plan.resident[1]);
    EXPECT_FALSE(plan.fullyResident);
    EXPECT_GT(plan.perExecutionStreamBytes, 0);
}

TEST(Residency, WeightBytesParameterScalesFootprint)
{
    Network net("fp8", Shape({4096}));
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", 4096, 4096));
    AcceleratorParams p;
    p.weightsBufferBytes = 20ll * 1024 * 1024;
    // fp32: 67 MB > 20 MB -> spills.
    EXPECT_FALSE(planResidency(net, p).fullyResident);
    // 8-bit weights: 16.8 MB < 20 MB -> fits.
    p.weightBytes = 1;
    EXPECT_TRUE(planResidency(net, p).fullyResident);
}

TEST(Residency, RecurrentFitsOneLayerAtATime)
{
    // EESEN-like: five BiLSTM layers, total > buffer but each layer
    // fits individually.
    Network net("rnn", Shape({120}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 120, 320));
    for (int i = 2; i <= 5; ++i) {
        net.addLayer(std::make_unique<BiLstmLayer>(
            "L" + std::to_string(i), 640, 320));
    }
    AcceleratorParams p;
    p.weightsBufferBytes = 10ll * 1024 * 1024;
    const auto plan = planResidency(net, p);
    EXPECT_FALSE(plan.fullyResident);
    for (size_t i = 0; i < net.layerCount(); ++i)
        EXPECT_TRUE(plan.resident[i]) << "layer " << i;
}

TEST(Residency, RecurrentFullyResidentWhenSmall)
{
    Network net("rnn", Shape({16}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 16, 8));
    AcceleratorParams p;
    const auto plan = planResidency(net, p);
    EXPECT_TRUE(plan.fullyResident);
    EXPECT_EQ(plan.initialLoadBytes, net.paramCount() * 4);
}

TEST(Residency, ParamFreeLayersAlwaysResident)
{
    Network net("acts", Shape({10}));
    net.addLayer(
        std::make_unique<FullyConnectedLayer>("FC", 10, 10));
    AcceleratorParams p;
    const auto plan = planResidency(net, p);
    EXPECT_EQ(plan.totalWeightBytes, net.paramCount() * 4);
}

} // namespace
} // namespace reuse
