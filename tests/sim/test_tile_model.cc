/** @file Unit tests for multi-tile work distribution (Sec. IV-E). */

#include <gtest/gtest.h>

#include "sim/tile_model.h"

namespace reuse {
namespace {

TEST(TileModel, EvenSplitIsBalanced)
{
    const auto d = distributeUnits(2000, 4);
    EXPECT_EQ(d.unitsPerTile, 500);
    EXPECT_EQ(d.activeTiles, 4);
    EXPECT_DOUBLE_EQ(d.imbalance, 1.0);
}

TEST(TileModel, UnevenSplitHasImbalance)
{
    // 3482 outputs over 4 tiles: 871 on the busiest tile.
    const auto d = distributeUnits(3482, 4);
    EXPECT_EQ(d.unitsPerTile, 871);
    EXPECT_EQ(d.activeTiles, 4);
    EXPECT_NEAR(d.imbalance, 871.0 * 4.0 / 3482.0, 1e-12);
    EXPECT_GT(d.imbalance, 1.0);
}

TEST(TileModel, FewerUnitsThanTiles)
{
    const auto d = distributeUnits(3, 8);
    EXPECT_EQ(d.unitsPerTile, 1);
    EXPECT_EQ(d.activeTiles, 3);
    // Five tiles idle: imbalance 8/3.
    EXPECT_NEAR(d.imbalance, 8.0 / 3.0, 1e-12);
}

TEST(TileModel, SingleTileIsTrivial)
{
    const auto d = distributeUnits(1000, 1);
    EXPECT_EQ(d.unitsPerTile, 1000);
    EXPECT_EQ(d.activeTiles, 1);
    EXPECT_DOUBLE_EQ(d.imbalance, 1.0);
}

TEST(TileModel, ZeroUnitsIsSafe)
{
    const auto d = distributeUnits(0, 4);
    EXPECT_EQ(d.unitsPerTile, 0);
    EXPECT_EQ(d.activeTiles, 0);
    EXPECT_DOUBLE_EQ(d.imbalance, 1.0);
}

TEST(TileModel, ImbalanceShrinksWithMoreUnits)
{
    // Relative rounding waste decreases as units grow.
    const double small = distributeUnits(5, 4).imbalance;
    const double large = distributeUnits(5000, 4).imbalance;
    EXPECT_GT(small, large);
}

TEST(TileModel, ParallelUnitsPerLayerKind)
{
    EXPECT_EQ(layerParallelUnits(LayerKind::FullyConnected, 2000, 0),
              2000);
    EXPECT_EQ(layerParallelUnits(LayerKind::Conv2D, 24 * 31 * 98, 24),
              24);
    EXPECT_EQ(layerParallelUnits(LayerKind::Conv3D, 1000, 512), 512);
    // LSTM gates map one per tile (4 gates).
    EXPECT_EQ(layerParallelUnits(LayerKind::BiLstm, 640, 0), 4);
}

TEST(TileModel, RingGatherScalesWithTiles)
{
    EXPECT_EQ(ringGatherBytes(4096, 1), 0);
    const int64_t four = ringGatherBytes(4096, 4);
    const int64_t eight = ringGatherBytes(4096, 8);
    EXPECT_GT(four, 0);
    // More tiles -> more hops for the same payload.
    EXPECT_GT(eight, four);
}

TEST(TileModel, RingGatherFormula)
{
    // 4 tiles: 3/4 of the bytes travel an average of 2 hops.
    EXPECT_EQ(ringGatherBytes(4000, 4),
              static_cast<int64_t>(4000.0 * 3.0 / 4.0 * 2.0));
}

} // namespace
} // namespace reuse
