/** @file Unit tests for the per-layer accelerator cost model. */

#include <gtest/gtest.h>

#include "sim/cost_model.h"

namespace reuse {
namespace {

LayerExecRecord
fcRecord(int64_t n, int64_t m, bool enabled, bool first,
         int64_t changed)
{
    LayerExecRecord r;
    r.layerIndex = 0;
    r.kind = LayerKind::FullyConnected;
    r.reuseEnabled = enabled;
    r.firstExecution = first;
    r.inputsTotal = n;
    r.outputsTotal = m;
    r.macsFull = n * m;
    if (enabled && !first) {
        r.inputsChecked = n;
        r.inputsChanged = changed;
        r.macsPerformed = changed * m;
    } else {
        r.macsPerformed = r.macsFull;
    }
    return r;
}

TEST(CostModel, KindClassification)
{
    EXPECT_TRUE(isFcLike(LayerKind::FullyConnected));
    EXPECT_TRUE(isFcLike(LayerKind::BiLstm));
    EXPECT_FALSE(isFcLike(LayerKind::Conv2D));
    EXPECT_TRUE(isConvKind(LayerKind::Conv2D));
    EXPECT_TRUE(isConvKind(LayerKind::Conv3D));
    EXPECT_FALSE(isConvKind(LayerKind::Activation));
}

TEST(CostModel, BaselineFcCyclesArePerInputPipelined)
{
    AcceleratorParams p;   // 128 lanes
    const auto rec = fcRecord(400, 2000, false, false, 0);
    const auto ev = layerEvents(rec, {}, p);
    // ceil(2000 / 128) = 16 cycles per input.
    EXPECT_DOUBLE_EQ(ev.cycles, 400.0 * 16.0);
    EXPECT_EQ(ev.fpMul, 400 * 2000);
    // MAC adds plus one bias add per output.
    EXPECT_EQ(ev.fpAdd, 400 * 2000 + 2000);
    EXPECT_EQ(ev.quantOps, 0);
}

TEST(CostModel, BaselineSmallOutputHasInputFloor)
{
    AcceleratorParams p;
    // EESEN FC1-like: 640 inputs, 50 outputs (< 128 lanes).
    const auto rec = fcRecord(640, 50, false, false, 0);
    const auto ev = layerEvents(rec, {}, p);
    EXPECT_DOUBLE_EQ(ev.cycles, 640.0);
}

TEST(CostModel, ReuseFcSkipsUnchangedInputs)
{
    AcceleratorParams p;
    const auto baseline = fcRecord(400, 2000, false, false, 0);
    const auto reuse = fcRecord(400, 2000, true, false, 100);
    const auto ev_b = layerEvents(baseline, {}, p);
    const auto ev_r = layerEvents(reuse, {}, p);
    // 25% changed -> roughly 4x fewer cycles.
    EXPECT_NEAR(ev_b.cycles / ev_r.cycles, 4.0, 0.05);
    EXPECT_EQ(ev_r.quantOps, 400);
    EXPECT_EQ(ev_r.cmpOps, 400);
    EXPECT_LT(ev_r.edramWeightBytes, ev_b.edramWeightBytes);
}

TEST(CostModel, FullySimilarReuseCostsOnlyCompareStage)
{
    AcceleratorParams p;
    const auto rec = fcRecord(400, 2000, true, false, 0);
    const auto ev = layerEvents(rec, {}, p);
    // ceil(400/128) = 4 cycles of vectorized quantize/compare.
    EXPECT_DOUBLE_EQ(ev.cycles, 4.0);
    EXPECT_EQ(ev.edramWeightBytes, 0);
}

TEST(CostModel, ReuseCyclesMonotonicInChangedInputs)
{
    AcceleratorParams p;
    double prev = -1.0;
    for (int64_t changed : {0, 50, 100, 200, 400}) {
        const auto ev =
            layerEvents(fcRecord(400, 2000, true, false, changed), {}, p);
        EXPECT_GT(ev.cycles, prev);
        prev = ev.cycles;
    }
}

TEST(CostModel, NonResidentWeightsGoToDram)
{
    AcceleratorParams p;
    LayerCostContext ctx;
    ctx.weightsResident = false;
    const auto rec = fcRecord(400, 2000, false, false, 0);
    const auto ev = layerEvents(rec, ctx, p);
    EXPECT_EQ(ev.edramWeightBytes, 0);
    EXPECT_GT(ev.dramWeightBytes, 0);
    // DRAM streaming of 400*2000*4 bytes at 32 B/cycle dominates the
    // 6400 compute cycles.
    EXPECT_GT(ev.cycles, 6400.0);
}

TEST(CostModel, DramOverlapTakesMax)
{
    AcceleratorParams p;
    LayerCostContext ctx;
    ctx.weightsResident = false;
    const auto rec = fcRecord(400, 2000, false, false, 0);
    const auto ev = layerEvents(rec, ctx, p);
    const double dram_cycles =
        static_cast<double>(ev.dramBytes()) / p.dramBytesPerCycle();
    EXPECT_DOUBLE_EQ(ev.cycles, dram_cycles);
}

TEST(CostModel, ConvBaselineLaneBound)
{
    AcceleratorParams p;
    LayerExecRecord rec;
    rec.kind = LayerKind::Conv2D;
    rec.inputsTotal = 1000;
    rec.outputsTotal = 5000;
    rec.macsFull = 1000 * 600;
    rec.macsPerformed = rec.macsFull;
    rec.kernelExtent = 5;
    const auto ev = layerEvents(rec, {}, p);
    // MAC-bound: 600000 / 128 = 4687.5 -> 4688 > 1000-input floor.
    EXPECT_NEAR(ev.cycles, 4688.0, 1.0);
}

TEST(CostModel, ConvReuseUsesPerformedMacs)
{
    AcceleratorParams p;
    LayerExecRecord rec;
    rec.kind = LayerKind::Conv2D;
    rec.reuseEnabled = true;
    rec.inputsTotal = 1000;
    rec.inputsChecked = 1000;
    rec.inputsChanged = 100;
    rec.outputsTotal = 5000;
    rec.macsFull = 600000;
    rec.macsPerformed = 60000;
    rec.kernelExtent = 3;
    const auto ev = layerEvents(rec, {}, p);
    EXPECT_NEAR(ev.cycles, 60000.0 / 128.0, 1.0);
    EXPECT_EQ(ev.quantOps, 1000);
}

TEST(CostModel, ConvDramActivationsWithHalo)
{
    AcceleratorParams p;   // blockEdge 16
    LayerCostContext ctx;
    ctx.dramActivations = true;
    LayerExecRecord rec;
    rec.kind = LayerKind::Conv2D;
    rec.inputsTotal = 1024;
    rec.outputsTotal = 1024;
    rec.macsFull = 1024 * 9;
    rec.macsPerformed = rec.macsFull;
    rec.kernelExtent = 3;
    const auto ev = layerEvents(rec, ctx, p);
    // Input traffic inflated by the halo factor (18/16)^2.
    const double halo = (18.0 / 16.0) * (18.0 / 16.0);
    EXPECT_EQ(ev.dramActivationBytes,
              static_cast<int64_t>(1024 * 4 * halo) + 1024 * 4);
}

TEST(CostModel, ReuseConvDramTrafficScalesWithChanges)
{
    AcceleratorParams p;
    LayerCostContext ctx;
    ctx.dramActivations = true;
    LayerExecRecord base;
    base.kind = LayerKind::Conv2D;
    base.inputsTotal = 1024;
    base.outputsTotal = 1024;
    base.macsFull = 1024 * 9;
    base.macsPerformed = base.macsFull;
    base.kernelExtent = 3;
    const auto ev_b = layerEvents(base, ctx, p);

    // High similarity: untouched output blocks stay in DRAM, so the
    // reuse configuration moves fewer activation bytes despite the
    // added index traffic.
    LayerExecRecord mostly_same = base;
    mostly_same.reuseEnabled = true;
    mostly_same.firstExecution = false;
    mostly_same.inputsChecked = 1024;
    mostly_same.inputsChanged = 100;
    mostly_same.macsPerformed = 100 * 9;
    const auto ev_similar = layerEvents(mostly_same, ctx, p);
    EXPECT_LT(ev_similar.dramActivationBytes,
              ev_b.dramActivationBytes);

    // Zero similarity: every output block is read, corrected and
    // written back, plus the index planes -- more traffic than the
    // baseline's single output write.
    LayerExecRecord all_changed = mostly_same;
    all_changed.inputsChanged = 1024;
    all_changed.macsPerformed = all_changed.macsFull;
    const auto ev_worst = layerEvents(all_changed, ctx, p);
    EXPECT_GT(ev_worst.dramActivationBytes, ev_b.dramActivationBytes);
}

TEST(CostModel, ElementwiseLayersAreCheap)
{
    AcceleratorParams p;
    LayerExecRecord rec;
    rec.kind = LayerKind::Activation;
    rec.inputsTotal = 1280;
    rec.outputsTotal = 1280;
    const auto ev = layerEvents(rec, {}, p);
    EXPECT_DOUBLE_EQ(ev.cycles, 10.0);
    EXPECT_EQ(ev.edramWeightBytes, 0);
}

TEST(CostModel, LstmRecordIncludesElementwiseTail)
{
    AcceleratorParams p;
    LayerExecRecord rec;
    rec.kind = LayerKind::BiLstm;
    rec.reuseEnabled = true;
    rec.firstExecution = false;
    rec.steps = 10;
    rec.inputsTotal = 10 * 2 * (64 + 32);
    rec.inputsChecked = rec.inputsTotal;
    rec.inputsChanged = 100;
    rec.outputsTotal = 10 * 2 * 4 * 32;
    rec.macsFull = 10 * 2 * 4 * (64 * 32 + 32 * 32);
    rec.macsPerformed = 100 * 4 * 32;
    const auto ev = layerEvents(rec, {}, p);
    // fpMul includes corrections + quantize + elementwise tail.
    EXPECT_GE(ev.fpMul, rec.macsPerformed + rec.inputsTotal +
                            rec.outputsTotal);
}

TEST(CostModel, EventsAddUp)
{
    SimEvents a, b;
    a.cycles = 10;
    a.fpMul = 5;
    a.edramWeightBytes = 100;
    b.cycles = 2;
    b.fpMul = 7;
    b.dramWeightBytes = 50;
    a += b;
    EXPECT_DOUBLE_EQ(a.cycles, 12.0);
    EXPECT_EQ(a.fpMul, 12);
    EXPECT_EQ(a.dramBytes(), 50);
    EXPECT_EQ(a.fpOps(), 12);
}

} // namespace
} // namespace reuse
