/** @file Unit tests for the storage-footprint model (Table III). */

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"
#include "sim/io_buffer_model.h"

namespace reuse {
namespace {

TEST(DramActivations, OnlyCnnsUseDram)
{
    Network mlp("mlp", Shape({4}));
    mlp.addLayer(std::make_unique<FullyConnectedLayer>("FC", 4, 4));
    EXPECT_FALSE(usesDramActivations(mlp));

    Network cnn("cnn", Shape({1, 8, 8}));
    cnn.addLayer(std::make_unique<Conv2DLayer>("C", 1, 2, 3, 1));
    EXPECT_TRUE(usesDramActivations(cnn));

    Network rnn("rnn", Shape({5}));
    rnn.addLayer(std::make_unique<BiLstmLayer>("L", 5, 4));
    EXPECT_FALSE(usesDramActivations(rnn));
}

struct MlpFixture {
    Rng rng{71};
    Network net{"mlp", Shape({8})};
    QuantizationPlan plan;

    MlpFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 8, 64));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 64, 32));
        initNetwork(net, rng);
        std::vector<Tensor> calib;
        for (int i = 0; i < 4; ++i) {
            Tensor t(Shape({8}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        const auto ranges = profileNetworkRanges(net, calib);
        plan = makePlan(net, ranges, 16, {0, 1});
    }
};

TEST(StorageFootprint, MlpBaselineDoubleBuffersWidestLayer)
{
    MlpFixture f;
    AcceleratorParams p;
    const auto fp = computeStorageFootprint(f.net, f.plan, p);
    // Widest activation is 64 elements -> 2 * 64 * 4 bytes.
    EXPECT_EQ(fp.ioBufferBaselineBytes, 2 * 64 * 4);
}

TEST(StorageFootprint, MlpReuseAddsOutputsAndIndices)
{
    MlpFixture f;
    AcceleratorParams p;
    const auto fp = computeStorageFootprint(f.net, f.plan, p);
    // Extra: FC1 outputs (64*4) + FC1 indices (8) + FC2 outputs
    // (32*4) + FC2 indices (64).
    EXPECT_EQ(fp.ioBufferReuseBytes,
              fp.ioBufferBaselineBytes +
                  64 * 4 + 8 * p.indexBytes + 32 * 4 +
                  64 * p.indexBytes);
}

TEST(StorageFootprint, MlpMainMemoryUnchangedByReuse)
{
    MlpFixture f;
    AcceleratorParams p;
    const auto fp = computeStorageFootprint(f.net, f.plan, p);
    EXPECT_EQ(fp.mainMemoryBaselineBytes, f.net.paramCount() * 4);
    EXPECT_EQ(fp.mainMemoryReuseBytes, fp.mainMemoryBaselineBytes);
}

TEST(StorageFootprint, DisabledPlanAddsNothing)
{
    MlpFixture f;
    AcceleratorParams p;
    const auto fp =
        computeStorageFootprint(f.net, QuantizationPlan(f.net), p);
    EXPECT_EQ(fp.ioBufferReuseBytes, fp.ioBufferBaselineBytes);
    EXPECT_EQ(fp.centroidTableBytes, 0);
}

TEST(StorageFootprint, CnnBlockedBuffers)
{
    Rng rng(72);
    Network net("cnn", Shape({3, 32, 32}));
    net.addLayer(std::make_unique<Conv2DLayer>("C1", 3, 8, 3, 1));
    net.addLayer(std::make_unique<Conv2DLayer>("C2", 8, 16, 3, 1));
    initNetwork(net, rng);
    std::vector<Tensor> calib;
    for (int i = 0; i < 2; ++i) {
        Tensor t(Shape({3, 32, 32}));
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        calib.push_back(t);
    }
    const auto ranges = profileNetworkRanges(net, calib);
    const auto plan = makePlan(net, ranges, 32, {0, 1});
    AcceleratorParams p;
    const auto fp = computeStorageFootprint(net, plan, p);
    // Max in channels 8 (haloed 18x18 blocks for the 3x3 kernel),
    // max out channels 16 (plain 16x16 blocks), 4 B elements.
    const int64_t in_block = 18 * 18 * 4;
    const int64_t out_block = 16 * 16 * 4;
    EXPECT_EQ(fp.ioBufferBaselineBytes, 8 * in_block + 16 * out_block);
    // Reuse adds one index byte per (un-haloed) input-block element.
    EXPECT_EQ(fp.ioBufferReuseBytes,
              fp.ioBufferBaselineBytes + 8 * 16 * 16 * p.indexBytes);
    // CNN main memory holds activations and gains index planes.
    EXPECT_GT(fp.mainMemoryBaselineBytes, net.paramCount() * 4);
    EXPECT_GT(fp.mainMemoryReuseBytes, fp.mainMemoryBaselineBytes);
}

TEST(StorageFootprint, RnnReuseExtraIsPerCellNotPerLayer)
{
    Rng rng(73);
    Network net("rnn", Shape({12}));
    net.addLayer(std::make_unique<BiLstmLayer>("L1", 12, 8));
    net.addLayer(std::make_unique<BiLstmLayer>("L2", 16, 8));
    initNetwork(net, rng);
    std::vector<Tensor> seq;
    for (int t = 0; t < 6; ++t) {
        Tensor x(Shape({12}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        seq.push_back(x);
    }
    const auto ranges = profileNetworkRanges(net, seq);
    const auto plan = makePlan(net, ranges, 16, {0, 1});
    AcceleratorParams p;
    const auto fp = computeStorageFootprint(net, plan, p);
    // The reuse extra covers ONE direction of ONE layer's cell state
    // (max over layers), not the sum: recurrent layers run one at a
    // time and the two directions run back-to-back.
    const int64_t l2_per_dir =
        4 * 8 * 4 + (16 + 8) * p.indexBytes;
    EXPECT_EQ(fp.ioBufferReuseBytes - fp.ioBufferBaselineBytes,
              l2_per_dir);
}

TEST(StorageFootprint, CentroidTableCountsEnabledQuantizers)
{
    MlpFixture f;
    AcceleratorParams p;
    const auto fp = computeStorageFootprint(f.net, f.plan, p);
    int64_t expected = 0;
    for (size_t li = 0; li < f.plan.size(); ++li) {
        if (f.plan.layer(li).enabled())
            expected += f.plan.layer(li).input->indexCount() * 4;
    }
    EXPECT_EQ(fp.centroidTableBytes, expected);
    EXPECT_GT(fp.centroidTableBytes, 0);
}

} // namespace
} // namespace reuse
