/** @file Unit tests for the experiment harness. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/paper_reference.h"
#include "harness/trace_dump.h"
#include "harness/workload_setup.h"

namespace reuse {
namespace {

WorkloadSetupConfig
tinyConfig()
{
    WorkloadSetupConfig cfg;
    cfg.calibrationFrames = 12;
    cfg.c3dSpatialDivisor = 8;
    return cfg;
}

TEST(PaperReference, AllFourNetworksListed)
{
    const auto &refs = paperReferences();
    EXPECT_EQ(refs.size(), 4u);
    for (const char *name : {"Kaldi", "EESEN", "C3D", "AutoPilot"})
        EXPECT_EQ(refs.count(name), 1u) << name;
    EXPECT_DOUBLE_EQ(refs.at("Kaldi").speedup, 1.9);
    EXPECT_DOUBLE_EQ(refs.at("AutoPilot").speedup, 5.2);
    EXPECT_EQ(refs.at("C3D").layerReuse.size(), 10u);
}

TEST(PaperReference, AveragesMatchPaperText)
{
    const PaperAverages avg;
    EXPECT_DOUBLE_EQ(avg.inputSimilarity, 0.61);
    EXPECT_DOUBLE_EQ(avg.computationReuse, 0.66);
    EXPECT_DOUBLE_EQ(avg.speedup, 3.5);
    EXPECT_DOUBLE_EQ(avg.energySavings, 0.63);
}

TEST(WorkloadSetup, KaldiAssembles)
{
    Workload w = setupKaldi(tinyConfig());
    EXPECT_EQ(w.name, "Kaldi");
    EXPECT_FALSE(w.recurrent);
    EXPECT_EQ(w.plan.enabledCount(), 4u);
    EXPECT_EQ(w.generator->inputShape(), Shape({360}));
    const Tensor frame = w.generator->next();
    EXPECT_EQ(frame.numel(), 360);
}

TEST(WorkloadSetup, EesenAssembles)
{
    Workload w = setupEesen(tinyConfig());
    EXPECT_TRUE(w.recurrent);
    EXPECT_EQ(w.plan.enabledCount(), 5u);
    // BiLSTM layers carry recurrent quantizers.
    for (size_t li = 0; li < w.plan.size(); ++li) {
        if (w.plan.layer(li).enabled()) {
            EXPECT_TRUE(w.plan.layer(li).recurrent.has_value());
        }
    }
}

TEST(WorkloadSetup, ByNameDispatch)
{
    for (const char *name : {"Kaldi", "EESEN", "AutoPilot"}) {
        Workload w = setupWorkload(name, tinyConfig());
        EXPECT_EQ(w.name, name);
    }
}

TEST(WorkloadSetup, SeedsMakeRunsReproducible)
{
    WorkloadSetupConfig cfg = tinyConfig();
    Workload a = setupKaldi(cfg);
    Workload b = setupKaldi(cfg);
    const Tensor fa = a.generator->next();
    const Tensor fb = b.generator->next();
    for (int64_t i = 0; i < fa.numel(); ++i)
        EXPECT_EQ(fa[i], fb[i]);
}

TEST(Experiment, MeasureFillsAllOutputs)
{
    Workload w = setupKaldi(tinyConfig());
    const auto inputs = w.generator->take(6);
    const auto m = measureWorkload(*w.bundle.network, w.plan, inputs);
    EXPECT_EQ(m.traces.size(), 6u);
    EXPECT_EQ(m.layerSimilarity.size(),
              w.bundle.network->layerCount());
    EXPECT_EQ(m.layerReuse.size(), w.bundle.network->layerCount());
    EXPECT_EQ(m.accuracy.executions, 6);
    // Disabled layers marked -1, enabled in [0, 1].
    for (size_t li = 0; li < m.layerSimilarity.size(); ++li) {
        if (w.plan.layer(li).enabled()) {
            EXPECT_GE(m.layerSimilarity[li], 0.0);
            EXPECT_LE(m.layerSimilarity[li], 1.0);
        } else {
            EXPECT_EQ(m.layerSimilarity[li], -1.0);
        }
    }
}

TEST(Experiment, SkippingReferenceSkipsAccuracy)
{
    Workload w = setupKaldi(tinyConfig());
    MeasureOptions opts;
    opts.withReference = false;
    const auto m = measureWorkload(*w.bundle.network, w.plan,
                                   w.generator->take(4), opts);
    EXPECT_EQ(m.accuracy.executions, 0);
    EXPECT_EQ(m.traces.size(), 4u);
}

TEST(TraceDump, CsvHasHeaderAndRows)
{
    Workload w = setupKaldi(tinyConfig());
    MeasureOptions opts;
    opts.withReference = false;
    const auto m = measureWorkload(*w.bundle.network, w.plan,
                                   w.generator->take(3), opts);
    std::ostringstream oss;
    dumpTracesCsv(oss, *w.bundle.network, m.traces);
    const std::string csv = oss.str();
    EXPECT_NE(csv.find("execution,layer,name"), std::string::npos);
    EXPECT_NE(csv.find("FC3"), std::string::npos);
    // Header + 3 executions x layerCount rows.
    const size_t rows =
        static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(rows, 1 + 3 * w.bundle.network->layerCount());
}

TEST(TraceDump, StatsCsv)
{
    Workload w = setupKaldi(tinyConfig());
    MeasureOptions opts;
    opts.withReference = false;
    const auto m = measureWorkload(*w.bundle.network, w.plan,
                                   w.generator->take(3), opts);
    std::ostringstream oss;
    dumpStatsCsv(oss, m.stats);
    EXPECT_NE(oss.str().find("computation_reuse"), std::string::npos);
    EXPECT_NE(oss.str().find("FC6"), std::string::npos);
}

} // namespace
} // namespace reuse
