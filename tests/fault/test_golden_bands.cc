/**
 * @file
 * Golden-band regression test for the Table I reproduction: each
 * reuse-enabled layer's measured computation reuse must stay inside
 * the band recorded in EXPERIMENTS.md (measured value +/- 6 pct
 * points).  Guards the whole stack — generators, quantizer
 * calibration, scan/delta kernels, engine — against silent drift that
 * per-unit tests cannot see.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/workload_setup.h"

namespace reuse {
namespace {

struct Band {
    std::string layer;
    /** EXPERIMENTS.md measured reuse (fraction). */
    double center;
};

/** Half-width of every band, in reuse fraction. */
constexpr double kBandHalfWidth = 0.06;

void
expectReuseBands(const std::string &workload, size_t frames,
                 const std::vector<Band> &bands)
{
    WorkloadSetupConfig cfg;
    Workload w = setupWorkload(workload, cfg);
    const auto inputs = w.generator->take(frames);
    MeasureOptions opt;
    opt.withReference = false;
    const WorkloadMeasurement m =
        measureWorkload(*w.bundle.network, w.plan, inputs, opt);

    for (const Band &band : bands) {
        const LayerReuseStats *found = nullptr;
        for (const auto &ls : m.stats.layers()) {
            if (ls.layerName == band.layer) {
                found = &ls;
                break;
            }
        }
        ASSERT_NE(found, nullptr)
            << workload << ": no stats for layer " << band.layer;
        EXPECT_TRUE(found->reuseEnabled)
            << workload << "." << band.layer;
        const double lo =
            std::max(0.0, band.center - kBandHalfWidth);
        const double hi =
            std::min(1.0, band.center + kBandHalfWidth);
        const double reuse = found->computationReuse();
        EXPECT_GE(reuse, lo)
            << workload << "." << band.layer
            << " reuse regressed below its EXPERIMENTS.md band";
        EXPECT_LE(reuse, hi)
            << workload << "." << band.layer
            << " reuse drifted above its EXPERIMENTS.md band";
    }
}

TEST(GoldenBands, KaldiReusePerLayer)
{
    expectReuseBands("Kaldi", 48,
                     {{"FC3", 0.62},
                      {"FC4", 0.68},
                      {"FC5", 0.75},
                      {"FC6", 0.74}});
}

TEST(GoldenBands, EesenReusePerLayer)
{
    expectReuseBands("EESEN", 40,
                     {{"BiLSTM1", 0.56},
                      {"BiLSTM2", 0.56},
                      {"BiLSTM3", 0.65},
                      {"BiLSTM4", 0.71},
                      {"BiLSTM5", 0.73}});
}

TEST(GoldenBands, C3DReusePerLayer)
{
    // FC1 is a documented scale artifact (EXPERIMENTS.md) and is
    // deliberately not banded.
    expectReuseBands("C3D", 5,
                     {{"CONV2", 0.80},
                      {"CONV3", 0.71},
                      {"CONV4", 0.75},
                      {"CONV5", 0.73},
                      {"CONV6", 0.79},
                      {"CONV7", 0.83},
                      {"CONV8", 0.89},
                      {"FC2", 0.67},
                      {"FC3", 0.64}});
}

TEST(GoldenBands, AutoPilotReusePerLayer)
{
    expectReuseBands("AutoPilot", 12,
                     {{"CONV1", 0.95},
                      {"CONV2", 0.97},
                      {"CONV3", 0.94},
                      {"CONV4", 0.90},
                      {"CONV5", 0.86},
                      {"FC1", 0.84},
                      {"FC2", 0.91},
                      {"FC3", 1.00},
                      {"FC4", 1.00}});
}

} // namespace
} // namespace reuse
