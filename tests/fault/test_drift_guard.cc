/** @file Unit tests for the accumulated-delta drift guard. */

#include <gtest/gtest.h>

#include <cfloat>

#include "common/random.h"
#include "core/drift_guard.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace {

struct MlpFixture {
    Rng rng{93};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    NetworkRanges ranges;

    MlpFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        ranges = profileNetworkRanges(net, calib);
    }

    QuantizationPlan plan() { return makePlan(net, ranges, 64, {0, 2}); }

    std::vector<Tensor> stream(size_t frames, float sigma = 0.2f)
    {
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

TEST(DriftGuard, IncrementIsMacsTimesEpsilon)
{
    LayerExecRecord rec;
    rec.reuseEnabled = true;
    rec.firstExecution = false;
    rec.macsPerformed = 1000;
    EXPECT_DOUBLE_EQ(DriftGuard::driftIncrement(rec),
                     1000.0 * static_cast<double>(FLT_EPSILON));

    rec.firstExecution = true;
    EXPECT_DOUBLE_EQ(DriftGuard::driftIncrement(rec), 0.0);

    rec.firstExecution = false;
    rec.reuseEnabled = false;
    EXPECT_DOUBLE_EQ(DriftGuard::driftIncrement(rec), 0.0);
}

TEST(DriftGuard, DisabledGuardNeverRefreshesAndTracksNoDrift)
{
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());    // refresh 0, bound 0
    EXPECT_FALSE(engine.driftGuard().enabled());

    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    for (const Tensor &in : f.stream(12))
        engine.execute(state, in, trace);
    EXPECT_EQ(state.executionsSinceRefresh(), 12);
    for (const double d : state.accumulatedDrift())
        EXPECT_EQ(d, 0.0);
}

TEST(DriftGuard, FrameBudgetRefreshesOnSchedule)
{
    MlpFixture f;
    ReuseEngineConfig cfg;
    cfg.refreshPeriod = 4;
    ReuseEngine engine(f.net, f.plan(), cfg);

    ReuseState state = engine.makeState();
    ReuseStatsCollector stats = engine.makeStatsCollector();
    ExecutionTrace trace;
    for (const Tensor &in : f.stream(12)) {
        engine.execute(state, in, trace);
        stats.addTrace(trace);
    }
    // Frames 0 (cold), 4 and 8 execute from scratch; the cold first
    // frame is not a drift refresh.
    EXPECT_EQ(stats.layers()[0].firstExecutions, 3);
    EXPECT_EQ(stats.layers()[0].driftRefreshes, 2);
    EXPECT_EQ(stats.layers()[2].driftRefreshes, 2);
}

TEST(DriftGuard, DriftBoundForcesRefreshAndResetsAccumulator)
{
    MlpFixture f;
    ReuseEngineConfig cfg;
    // One steady frame on this MLP performs well below 200 MACs per
    // layer only when inputs barely change; with a noisy stream the
    // bound trips after a handful of frames.
    cfg.driftBound = 50.0 * static_cast<double>(FLT_EPSILON);
    ReuseEngine engine(f.net, f.plan(), cfg);
    EXPECT_TRUE(engine.driftGuard().enabled());

    ReuseState state = engine.makeState();
    ReuseStatsCollector stats = engine.makeStatsCollector();
    ExecutionTrace trace;
    for (const Tensor &in : f.stream(20, 0.3f)) {
        engine.execute(state, in, trace);
        stats.addTrace(trace);
        for (const double d : state.accumulatedDrift()) {
            // accumulate() runs after any refresh, so the tracked
            // drift never exceeds bound + one frame's increment.
            EXPECT_LT(d, cfg.driftBound +
                             1000.0 * static_cast<double>(FLT_EPSILON));
        }
    }
    EXPECT_GE(stats.layers()[0].driftRefreshes, 1);
}

TEST(DriftGuard, RefreshedStreamStaysOnGoldenSchedule)
{
    // With a frame-count budget the refresh schedule is a pure
    // function of the frame index, so a replay on a fresh state
    // reproduces the stream bit-exactly.
    MlpFixture f;
    ReuseEngineConfig cfg;
    cfg.refreshPeriod = 3;
    ReuseEngine engine(f.net, f.plan(), cfg);
    const auto inputs = f.stream(10);

    ReuseState a = engine.makeState();
    ReuseState b = engine.makeState();
    ExecutionTrace trace;
    for (const Tensor &in : inputs) {
        const Tensor out_a = engine.execute(a, in, trace);
        const Tensor out_b = engine.execute(b, in, trace);
        for (int64_t j = 0; j < out_a.numel(); ++j)
            EXPECT_EQ(out_a[j], out_b[j]);
    }
}

} // namespace
} // namespace reuse
