/** @file Unit tests for the deterministic fault injector. */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "fault/fault_injector.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/range_profiler.h"

namespace reuse {
namespace {

/** Disarms the global injector when a test scope exits. */
struct ArmGuard {
    ~ArmGuard() { fault::FaultInjector::global().disarm(); }
};

struct MlpFixture {
    Rng rng{61};
    Network net{"mlp", Shape({6})};
    std::vector<Tensor> calib;
    NetworkRanges ranges;

    MlpFixture()
    {
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 6, 10));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 10, 4));
        initNetwork(net, rng);
        for (int i = 0; i < 10; ++i) {
            Tensor t(Shape({6}));
            rng.fillGaussian(t.data(), 0.0f, 1.0f);
            calib.push_back(t);
        }
        ranges = profileNetworkRanges(net, calib);
    }

    QuantizationPlan plan() { return makePlan(net, ranges, 64, {0, 2}); }

    std::vector<Tensor> stream(size_t frames, float sigma = 0.05f)
    {
        std::vector<Tensor> s;
        Tensor x(Shape({6}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                x[j] += rng.gaussian(0.0f, sigma);
            s.push_back(x);
        }
        return s;
    }
};

std::vector<Tensor>
runStream(const ReuseEngine &engine, const std::vector<Tensor> &inputs)
{
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());
    for (const Tensor &in : inputs)
        outputs.push_back(engine.execute(state, in, trace));
    return outputs;
}

bool
streamsBitEqual(const std::vector<Tensor> &a,
                const std::vector<Tensor> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].numel() != b[i].numel() ||
            std::memcmp(a[i].data().data(), b[i].data().data(),
                        static_cast<size_t>(a[i].numel()) *
                            sizeof(float)) != 0)
            return false;
    }
    return true;
}

TEST(FaultInjector, KindNamesRoundTrip)
{
    for (int k = 0; k < fault::kNumFaultKinds; ++k) {
        const auto kind = static_cast<fault::FaultKind>(k);
        const char *name = fault::faultKindName(kind);
        ASSERT_NE(name, nullptr);
        const auto parsed = fault::parseFaultKind(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(fault::parseFaultKind("no-such-fault").has_value());
}

TEST(FaultInjector, DisarmedHooksLeaveDataUntouched)
{
    std::vector<float> floats{1.0f, 2.0f, 3.0f};
    std::vector<int32_t> indices{4, 5, 6};
    const auto floats_before = floats;
    const auto indices_before = indices;
    fault::corruptFloats(LayerKind::FullyConnected, floats.data(), 3);
    fault::corruptIndices(LayerKind::FullyConnected, indices.data(),
                          3);
    EXPECT_EQ(floats, floats_before);
    EXPECT_EQ(indices, indices_before);
    EXPECT_FALSE(fault::frameFaultsArmed());
    EXPECT_FALSE(fault::shouldDropFrame());
    EXPECT_FALSE(fault::shouldDuplicateFrame());
}

TEST(FaultInjector, OutputBitFlipCorruptsDeterministically)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    const auto inputs = f.stream(10);
    const auto clean = runStream(engine, inputs);

    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::OutputBitFlip;
    plan.layerKind = LayerKind::FullyConnected;
    plan.fireAtInvocation = 3;
    plan.seed = 7;
    ArmGuard guard;

    fault::FaultInjector::global().arm(plan);
    const auto faulty1 = runStream(engine, inputs);
    EXPECT_EQ(fault::FaultInjector::global().fires(), 1u);

    fault::FaultInjector::global().arm(plan);
    const auto faulty2 = runStream(engine, inputs);

    // Same plan, same stream -> identical corruption; and the
    // corruption is visible against the clean run.
    EXPECT_TRUE(streamsBitEqual(faulty1, faulty2));
    EXPECT_FALSE(streamsBitEqual(faulty1, clean));
}

TEST(FaultInjector, LayerKindFilterSuppressesMismatchedHooks)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    const auto inputs = f.stream(6);

    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::OutputBitFlip;
    plan.layerKind = LayerKind::Conv2D;     // no conv layer exists
    ArmGuard guard;
    fault::FaultInjector::global().arm(plan);
    const auto faulty = runStream(engine, inputs);
    EXPECT_EQ(fault::FaultInjector::global().fires(), 0u);
    EXPECT_EQ(fault::FaultInjector::global().invocations(), 0u);

    fault::FaultInjector::global().disarm();
    const auto clean = runStream(engine, inputs);
    EXPECT_TRUE(streamsBitEqual(faulty, clean));
}

TEST(FaultInjector, QuantScaleDriftAndStaleChangesFire)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    MlpFixture f;
    ReuseEngine engine(f.net, f.plan());
    const auto inputs = f.stream(8, 0.3f);
    ArmGuard guard;

    for (const auto kind : {fault::FaultKind::QuantScaleDrift,
                            fault::FaultKind::StaleChangeList}) {
        fault::FaultPlan plan;
        plan.kind = kind;
        plan.seed = 11;
        fault::FaultInjector::global().arm(plan);
        runStream(engine, inputs);
        EXPECT_GE(fault::FaultInjector::global().fires(), 1u)
            << fault::faultKindName(kind);
    }
}

TEST(FaultInjector, BlockingStallParksAndDisarmReleases)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::WorkerStall;
    plan.stallMicros = -1;      // block until disarm
    fault::FaultInjector::global().arm(plan);

    std::thread stalled([] { fault::maybeStall(); });
    while (fault::FaultInjector::global().stalledCount() == 0)
        std::this_thread::yield();
    EXPECT_EQ(fault::FaultInjector::global().stalledCount(), 1u);

    fault::FaultInjector::global().disarm();
    stalled.join();
    EXPECT_EQ(fault::FaultInjector::global().stalledCount(), 0u);
}

TEST(FaultInjector, FrameFaultsReportArmedAndFire)
{
    if (!fault::injectionCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    ArmGuard guard;
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::DroppedFrame;
    plan.fireAtInvocation = 2;
    fault::FaultInjector::global().arm(plan);
    EXPECT_TRUE(fault::frameFaultsArmed());
    EXPECT_FALSE(fault::shouldDropFrame());     // invocation 1
    EXPECT_TRUE(fault::shouldDropFrame());      // invocation 2: fires
    EXPECT_FALSE(fault::shouldDropFrame());     // maxFires reached
    EXPECT_FALSE(fault::shouldDuplicateFrame());
}

} // namespace
} // namespace reuse
