/**
 * @file
 * Property-based differential tests: randomized topologies x random
 * frame sequences, reuse path vs from-scratch golden via the
 * differential oracle.
 *
 * Two regimes:
 *
 *  - Dyadic exact-arithmetic domain.  Weights/biases are multiples of
 *    1/8, inputs multiples of 1/4, and the quantizer step is 1/4
 *    (LinearQuantizer(64, -8, 8)), so every product is a multiple of
 *    1/32 and every intermediate sum stays far below 2^24 such units.
 *    All fp32 operations are then exact, which makes the incremental
 *    path z' = z + (c' - c) W mathematically identical to the
 *    from-scratch sum — the reuse output must match the golden run
 *    BIT-EXACTLY in quantized space, for any topology and stream.
 *
 *  - General fp32 (Gaussian weights/streams).  The incremental path
 *    may differ from scratch by accumulated rounding only, so the
 *    oracle diff must stay within a small epsilon; replaying the same
 *    stream on a fresh state must still be bit-exact (determinism).
 *
 * Together >100 seeded cases cover FC / conv2d / conv3d / LSTM /
 * BiLSTM layers, odd sizes, and mixed stacks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"
#include "support/diff_oracle.h"

namespace reuse {
namespace {

using testing::OracleReport;
using testing::diffAgainstReplay;
using testing::diffAgainstScratch;
using testing::diffSequencesAgainstReplay;

/** Quantizer whose centroids are exact multiples of 1/4. */
LinearQuantizer
dyadicQuantizer()
{
    return LinearQuantizer(64, -8.0f, 8.0f);
}

/** A random multiple of 1/8 in [-1/2, 1/2]. */
float
dyadicWeight(Rng &rng)
{
    return static_cast<float>(rng.uniformInt(-4, 4)) / 8.0f;
}

/** A random multiple of 1/4 in [-8, 8]. */
float
dyadicInput(Rng &rng)
{
    return static_cast<float>(rng.uniformInt(-32, 32)) / 4.0f;
}

void
dyadicize(AlignedVector<float> &values, Rng &rng)
{
    for (float &v : values)
        v = dyadicWeight(rng);
}

int64_t
pickOdd(Rng &rng, int lo, int hi)
{
    return 2 * rng.uniformInt(lo, hi) + 1;    // odd in [2lo+1, 2hi+1]
}

/**
 * Frame stream of dyadic inputs: a base frame plus per-frame sparse
 * mutations, so consecutive frames are similar (the reuse steady
 * path actually runs) but never identical.
 */
std::vector<Tensor>
dyadicStream(Rng &rng, const Shape &shape, size_t frames)
{
    std::vector<Tensor> stream;
    Tensor x(shape);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = dyadicInput(rng);
    for (size_t f = 0; f < frames; ++f) {
        for (int64_t i = 0; i < x.numel(); ++i) {
            if (rng.uniform(0.0f, 1.0f) < 0.35f)
                x[i] = dyadicInput(rng);
        }
        stream.push_back(x);
    }
    return stream;
}

/** Gaussian random-walk frame stream (general fp32 regime). */
std::vector<Tensor>
gaussianStream(Rng &rng, const Shape &shape, size_t frames,
               float sigma)
{
    std::vector<Tensor> stream;
    Tensor x(shape);
    rng.fillGaussian(x.data(), 0.0f, 1.0f);
    for (size_t f = 0; f < frames; ++f) {
        for (int64_t i = 0; i < x.numel(); ++i)
            x[i] += rng.gaussian(0.0f, sigma);
        stream.push_back(x);
    }
    return stream;
}

/**
 * Runs `inputs` through a fresh state of `engine`, recording whether
 * any steady-state layer execution actually skipped work (so the test
 * exercises the delta path rather than trivially re-running full
 * layers).
 */
std::vector<Tensor>
runStream(const ReuseEngine &engine, const std::vector<Tensor> &inputs,
          bool *saw_reuse = nullptr)
{
    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());
    for (const Tensor &in : inputs) {
        outputs.push_back(engine.execute(state, in, trace));
        if (saw_reuse != nullptr) {
            for (const LayerExecRecord &rec : trace) {
                if (rec.reuseEnabled && !rec.firstExecution &&
                    rec.macsPerformed < rec.macsFull)
                    *saw_reuse = true;
            }
        }
    }
    return outputs;
}

/** Network plus the indices of its reuse-enabled layers. */
struct BuiltNet {
    std::unique_ptr<Network> net;
    std::vector<size_t> reusable;
};

BuiltNet
buildDyadicFcNet(Rng &rng)
{
    const int64_t in_dim = pickOdd(rng, 2, 6);
    BuiltNet b;
    b.net = std::make_unique<Network>("prop_fc", Shape({in_dim}));
    const int n_layers = rng.uniformInt(2, 3);
    int64_t d = in_dim;
    size_t li = 0;
    for (int l = 0; l < n_layers; ++l) {
        const int64_t out = pickOdd(rng, 2, 8);
        auto fc = std::make_unique<FullyConnectedLayer>(
            "FC" + std::to_string(l + 1), d, out);
        dyadicize(fc->weights(), rng);
        dyadicize(fc->biases(), rng);
        b.net->addLayer(std::move(fc));
        b.reusable.push_back(li++);
        if (l + 1 < n_layers) {
            b.net->addLayer(std::make_unique<ActivationLayer>(
                "RELU" + std::to_string(l + 1),
                ActivationKind::ReLU));
            ++li;
        }
        d = out;
    }
    return b;
}

BuiltNet
buildDyadicConv2dNet(Rng &rng)
{
    const int64_t ch = rng.uniformInt(1, 3);
    const int64_t h = pickOdd(rng, 2, 4);
    const int64_t w = pickOdd(rng, 2, 4);
    BuiltNet b;
    b.net =
        std::make_unique<Network>("prop_conv2d", Shape({ch, h, w}));
    auto conv = std::make_unique<Conv2DLayer>(
        "CONV1", ch, pickOdd(rng, 1, 2), 3, 1);
    dyadicize(conv->weights(), rng);
    dyadicize(conv->biases(), rng);
    const Shape conv_out =
        conv->inferOutputShape(Shape({ch, h, w})).shape();
    b.net->addLayer(std::move(conv));
    b.reusable.push_back(0);
    b.net->addLayer(std::make_unique<ActivationLayer>(
        "RELU1", ActivationKind::ReLU));
    auto fc = std::make_unique<FullyConnectedLayer>(
        "FC1", conv_out.numel(), pickOdd(rng, 2, 5));
    dyadicize(fc->weights(), rng);
    dyadicize(fc->biases(), rng);
    b.net->addLayer(std::move(fc));
    b.reusable.push_back(2);
    return b;
}

BuiltNet
buildDyadicConv3dNet(Rng &rng)
{
    const int64_t ch = rng.uniformInt(1, 2);
    const int64_t d = pickOdd(rng, 1, 2);
    const int64_t h = pickOdd(rng, 1, 2);
    const int64_t w = pickOdd(rng, 1, 2);
    BuiltNet b;
    b.net = std::make_unique<Network>("prop_conv3d",
                                      Shape({ch, d, h, w}));
    auto conv = std::make_unique<Conv3DLayer>(
        "CONV1", ch, rng.uniformInt(2, 4), 3, 1);
    dyadicize(conv->weights(), rng);
    dyadicize(conv->biases(), rng);
    const Shape conv_out =
        conv->inferOutputShape(Shape({ch, d, h, w})).shape();
    b.net->addLayer(std::move(conv));
    b.reusable.push_back(0);
    auto fc = std::make_unique<FullyConnectedLayer>(
        "FC1", conv_out.numel(), pickOdd(rng, 1, 4));
    dyadicize(fc->weights(), rng);
    dyadicize(fc->biases(), rng);
    b.net->addLayer(std::move(fc));
    b.reusable.push_back(1);
    return b;
}

/** Conv2d -> ReLU -> FC -> ReLU -> FC mixed stack. */
BuiltNet
buildDyadicMixedNet(Rng &rng)
{
    const int64_t ch = rng.uniformInt(1, 2);
    const int64_t h = pickOdd(rng, 2, 3);
    const int64_t w = pickOdd(rng, 2, 3);
    BuiltNet b;
    b.net = std::make_unique<Network>("prop_mixed", Shape({ch, h, w}));
    auto conv =
        std::make_unique<Conv2DLayer>("CONV1", ch, 3, 3, 1);
    dyadicize(conv->weights(), rng);
    dyadicize(conv->biases(), rng);
    const Shape conv_out =
        conv->inferOutputShape(Shape({ch, h, w})).shape();
    b.net->addLayer(std::move(conv));
    b.reusable.push_back(0);
    b.net->addLayer(std::make_unique<ActivationLayer>(
        "RELU1", ActivationKind::ReLU));
    const int64_t mid = pickOdd(rng, 2, 5);
    auto fc1 = std::make_unique<FullyConnectedLayer>(
        "FC1", conv_out.numel(), mid);
    dyadicize(fc1->weights(), rng);
    dyadicize(fc1->biases(), rng);
    b.net->addLayer(std::move(fc1));
    b.reusable.push_back(2);
    b.net->addLayer(std::make_unique<ActivationLayer>(
        "RELU2", ActivationKind::ReLU));
    auto fc2 = std::make_unique<FullyConnectedLayer>(
        "FC2", mid, pickOdd(rng, 1, 3));
    dyadicize(fc2->weights(), rng);
    dyadicize(fc2->biases(), rng);
    b.net->addLayer(std::move(fc2));
    b.reusable.push_back(4);
    return b;
}

QuantizationPlan
dyadicPlan(const BuiltNet &b)
{
    QuantizationPlan plan(*b.net);
    for (const size_t i : b.reusable)
        plan.layer(i).input = dyadicQuantizer();
    return plan;
}

/**
 * The dyadic bit-exactness property: reuse output over the whole
 * stream is bitwise identical to a from-scratch golden run.
 */
void
expectDyadicBitExact(const BuiltNet &b, Rng &rng, uint64_t seed)
{
    SCOPED_TRACE(::testing::Message()
                 << b.net->name() << " seed=" << seed);
    ReuseEngine engine(*b.net, dyadicPlan(b));
    const auto inputs =
        dyadicStream(rng, b.net->inputShape(), 8);
    bool saw_reuse = false;
    const auto outputs = runStream(engine, inputs, &saw_reuse);
    const OracleReport report =
        diffAgainstScratch(engine, inputs, outputs);
    EXPECT_TRUE(report.allBitExact())
        << "first mismatch at frame " << report.firstMismatchFrame
        << ", max |diff| " << report.maxAbsDiff;
    EXPECT_TRUE(saw_reuse)
        << "stream never exercised the incremental path";
}

TEST(PropertyDifferential, DyadicFcStreamsMatchScratchBitExactly)
{
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        Rng rng(1000 + seed);
        const BuiltNet b = buildDyadicFcNet(rng);
        expectDyadicBitExact(b, rng, seed);
    }
}

TEST(PropertyDifferential, DyadicConv2dStreamsMatchScratchBitExactly)
{
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        Rng rng(2000 + seed);
        const BuiltNet b = buildDyadicConv2dNet(rng);
        expectDyadicBitExact(b, rng, seed);
    }
}

TEST(PropertyDifferential, DyadicConv3dStreamsMatchScratchBitExactly)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(3000 + seed);
        const BuiltNet b = buildDyadicConv3dNet(rng);
        expectDyadicBitExact(b, rng, seed);
    }
}

TEST(PropertyDifferential, DyadicMixedTopologiesMatchScratchBitExactly)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(4000 + seed);
        const BuiltNet b = buildDyadicMixedNet(rng);
        expectDyadicBitExact(b, rng, seed);
    }
}

/**
 * General-fp32 property: the reuse path stays within a small epsilon
 * of from-scratch (rounding only), and a replay of the same stream on
 * a fresh state is bit-identical (determinism).
 */
void
expectGaussianWithinEpsilon(BuiltNet &b, Rng &rng, uint64_t seed)
{
    SCOPED_TRACE(::testing::Message()
                 << b.net->name() << " seed=" << seed);
    initNetwork(*b.net, rng);
    std::vector<Tensor> calib;
    for (int i = 0; i < 12; ++i) {
        Tensor t(b.net->inputShape());
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        calib.push_back(t);
    }
    const NetworkRanges ranges = profileNetworkRanges(*b.net, calib);
    const QuantizationPlan plan =
        makePlan(*b.net, ranges, 64, b.reusable);
    ReuseEngine engine(*b.net, plan);

    const auto inputs =
        gaussianStream(rng, b.net->inputShape(), 8, 0.15f);
    const auto outputs = runStream(engine, inputs);
    const OracleReport scratch =
        diffAgainstScratch(engine, inputs, outputs);
    EXPECT_LT(scratch.maxAbsDiff, 5e-3f)
        << "incremental path drifted from scratch beyond rounding";
    const OracleReport replay =
        diffAgainstReplay(engine, inputs, outputs);
    EXPECT_TRUE(replay.allBitExact())
        << "replay diverged at frame " << replay.firstMismatchFrame;
}

TEST(PropertyDifferential, GaussianFcStreamsStayWithinRounding)
{
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        Rng rng(5000 + seed);
        BuiltNet b = buildDyadicFcNet(rng);    // topology only
        expectGaussianWithinEpsilon(b, rng, seed);
    }
}

TEST(PropertyDifferential, GaussianConvStreamsStayWithinRounding)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(6000 + seed);
        BuiltNet b = (seed % 2 == 0) ? buildDyadicConv3dNet(rng)
                                     : buildDyadicConv2dNet(rng);
        expectGaussianWithinEpsilon(b, rng, seed);
    }
}

/**
 * Recurrent property: executeSequence is deterministic under replay
 * (bit-exact on a fresh state fed the same sequences) and tracks the
 * FP32 reference within the quantization tolerance.
 */
TEST(PropertyDifferential, RecurrentSequencesReplayExactly)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(7000 + seed);
        const int64_t in_dim = pickOdd(rng, 2, 5);
        const int64_t cell_dim = pickOdd(rng, 1, 4);
        const bool bidir = (seed % 2 == 0);
        Network net("prop_lstm", Shape({in_dim}));
        if (bidir) {
            net.addLayer(std::make_unique<BiLstmLayer>(
                "BLSTM1", in_dim, cell_dim));
        } else {
            net.addLayer(std::make_unique<LstmLayer>(
                "LSTM1", in_dim, cell_dim));
        }
        initNetwork(net, rng);
        SCOPED_TRACE(::testing::Message()
                     << (bidir ? "bilstm" : "lstm")
                     << " seed=" << seed);

        QuantizationPlan plan(net);
        plan.layer(0).input = LinearQuantizer(1024, -4.0f, 4.0f);
        plan.layer(0).recurrent = LinearQuantizer(1024, -1.0f, 1.0f);
        ReuseEngine engine(net, plan);

        std::vector<std::vector<Tensor>> sequences;
        for (int s = 0; s < 3; ++s)
            sequences.push_back(
                gaussianStream(rng, net.inputShape(), 6, 0.1f));

        ReuseState state = engine.makeState();
        ExecutionTrace trace;
        std::vector<std::vector<Tensor>> outputs;
        for (const auto &seq : sequences)
            outputs.push_back(
                engine.executeSequence(state, seq, trace));

        const OracleReport replay =
            diffSequencesAgainstReplay(engine, sequences, outputs);
        EXPECT_TRUE(replay.allBitExact())
            << "replay diverged at sequence "
            << replay.firstMismatchFrame;

        // Fine-grained quantizers keep the reuse path close to the
        // FP32 reference (same tolerance as the unit tests).
        for (size_t s = 0; s < sequences.size(); ++s) {
            const auto want = net.forwardSequence(sequences[s]);
            ASSERT_EQ(outputs[s].size(), want.size());
            for (size_t t = 0; t < want.size(); ++t)
                for (int64_t j = 0; j < want[t].numel(); ++j)
                    EXPECT_NEAR(outputs[s][t][j], want[t][j], 8e-2f);
        }
    }
}

} // namespace
} // namespace reuse
